"""Stdlib HTTP surface over a running :class:`ReputationService`.

No framework, no dependencies: :class:`http.server.ThreadingHTTPServer`
with one handler class. Endpoints (all JSON):

===========================  ============================================
``GET /healthz``             liveness + loop tick count
``GET /snapshot``            current snapshot metadata + queue stats
``GET /reputation/<pid>``    one peer's reputation (404 on unknown ids)
``GET /top?k=10``            current top-k leaderboard
``POST /reports``            submit reports; body is either one
                             ``{"o":,"t":,"v":}`` object or a JSON array
                             of them; 429 when the queue sheds the batch
===========================  ============================================

Responses carry the snapshot ``version`` and ``staleness`` a reader
needs to reason about freshness (see ``docs/service.md``). Start from
the CLI: ``python -m repro.service serve --peers 500 --port 8080``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.queue import BackpressureError
from repro.service.service import ReputationService, ServiceLoop, UnknownPeerError


class _Handler(BaseHTTPRequestHandler):
    # Injected per-server by make_server(); class-level declarations keep
    # the handler stateless across requests.
    service: ReputationService
    loop: Optional[ServiceLoop] = None

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output and the soak scenario quiet

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- reads ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send(200, {
                    "status": "ok",
                    "ticks": self.loop.ticks if self.loop else 0,
                    "loop_running": bool(self.loop and self.loop.running),
                })
            elif parts == ["snapshot"]:
                self._send(200, self.service.snapshot_info())
            elif len(parts) == 2 and parts[0] == "reputation":
                self._get_reputation(parts[1])
            elif parts == ["top"]:
                k = int(parse_qs(url.query).get("k", ["10"])[0])
                snapshot = self.service.snapshot()
                self._send(200, {
                    "version": snapshot.version,
                    "staleness": snapshot.staleness,
                    "top": [
                        {"peer_id": pid, "reputation": value}
                        for pid, value in snapshot.top_k(max(1, k))
                    ],
                })
            else:
                self._send(404, {"error": f"no route for {url.path}"})
        except ValueError as error:
            self._send(400, {"error": str(error)})

    def _get_reputation(self, raw_pid: str) -> None:
        pid = int(raw_pid)
        snapshot = self.service.snapshot()
        if snapshot.get(pid, default=-1.0) < 0.0 and pid not in snapshot.peer_ids:
            self._send(404, {"error": f"unknown peer id {pid}"})
            return
        self._send(200, {
            "peer_id": pid,
            "reputation": snapshot.get(pid),
            "version": snapshot.version,
            "staleness": snapshot.staleness,
        })

    # -- writes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if urlparse(self.path).path != "/reports":
            self._send(404, {"error": f"no route for {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            rows = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as error:
            self._send(400, {"error": f"bad request body: {error}"})
            return
        if isinstance(rows, dict):
            rows = [rows]
        if not isinstance(rows, list):
            self._send(400, {"error": "body must be a report object or array of them"})
            return
        try:
            reports = [(int(r["o"]), int(r["t"]), float(r["v"])) for r in rows]
        except (KeyError, TypeError, ValueError) as error:
            self._send(400, {"error": f"each report needs o/t/v fields: {error}"})
            return
        try:
            accepted = self.service.submit_batch(reports)
        except UnknownPeerError as error:
            self._send(404, {"error": str(error)})
            return
        except BackpressureError as error:
            self._send(429, {
                "error": str(error),
                "accepted": 0,
                "pending": error.pending,
                "high_watermark": error.high_watermark,
            })
            return
        status = 202 if accepted == len(reports) else 429
        self._send(status, {
            "accepted": accepted,
            "submitted": len(reports),
            "queue": self.service.queue.stats(),
        })


def make_server(
    service: ReputationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    loop: Optional[ServiceLoop] = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (the HTTP smoke test does).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service, "loop": loop})
    return ThreadingHTTPServer((host, port), handler)


def serve_forever(
    service: ReputationService,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    interval: float = 0.25,
) -> None:
    """Run the service loop plus HTTP frontend until interrupted."""
    loop = ServiceLoop(service, interval=interval).start()
    server = make_server(service, host=host, port=port, loop=loop)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro-service: {service.num_peers} peers on backend "
        f"'{service.backend}' at http://{bound_host}:{bound_port} "
        f"(tick interval {interval}s) — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        loop.stop()


def start_background(
    service: ReputationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    interval: float = 0.0,
) -> Tuple[ThreadingHTTPServer, ServiceLoop, threading.Thread]:
    """Start loop + server on daemon threads; return all three handles.

    The embedding/test entry point: bind port 0, talk to
    ``server.server_address``, then ``server.shutdown()`` and
    ``loop.stop()`` when done.
    """
    loop = ServiceLoop(service, interval=interval).start()
    server = make_server(service, host=host, port=port, loop=loop)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, loop, thread


__all__ = ["make_server", "serve_forever", "start_background"]
