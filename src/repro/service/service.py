"""The reputation service: ingest queue → report fold → epoch → snapshot swap.

:class:`ReputationService` turns the library into a long-running
reputation process with the manager/ingest/query split of a production
trust system (Golem's ranking service is the shape exemplar): trust
reports stream into a bounded :class:`~repro.service.queue.ReportQueue`;
each :meth:`ReputationService.tick` drains one batch, folds it into the
:class:`~repro.trust.matrix.TrustMatrix` (direct trust is pure state, so
any batching of the same stream folds to the same matrix), re-announces
every changed column aggregate into the
:class:`~repro.runtime.dynamics.DynamicReputationRuntime` (Algorithm 2's
re-push, via :meth:`~repro.runtime.dynamics.DynamicReputationRuntime.republish_opinion`),
advances the runtime one warm-start gossip epoch on any registered
backend, and atomically swaps in a fresh immutable
:class:`~repro.service.snapshot.ReputationSnapshot`.

Reads never block the fold: queries are answered from the current
snapshot reference (an atomic load), and every snapshot carries its own
staleness bound — reports accepted but not yet folded at publication.

>>> service = ReputationService(12, seed=5, attachment_m=2)
>>> service.submit_report(0, 3, 0.9)
>>> service.submit_report(1, 3, 0.7)
>>> record = service.tick()
>>> record.reports_folded, service.snapshot_info()["version"]
(2, 1)
>>> round(service.get_reputation(3), 6)
0.133333
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.backend import GossipConfig
from repro.network.mutable import MutableOverlay
from repro.runtime.dynamics import DynamicReputationRuntime
from repro.service.queue import BackpressureError, ReportQueue, ServiceError
from repro.service.reports import TrustReport
from repro.service.snapshot import ReputationSnapshot
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import stateless_child_sequence

#: Child key of the topology stream (clear of runtime epoch keys).
TOPOLOGY_STREAM_KEY = 0x5E21CE00
#: Child key of the runtime replay root.
RUNTIME_STREAM_KEY = 0x5E21CE01

ReportLike = Union[TrustReport, Tuple[int, int, float]]


class UnknownPeerError(ServiceError, KeyError):
    """A report referenced a peer id outside the service's overlay."""

    def __init__(self, peer_id: int):
        self.peer_id = peer_id
        ServiceError.__init__(self, f"peer id {peer_id} is not in the service overlay")

    # KeyError.__str__ reprs the message (adds quotes); keep the plain text.
    __str__ = Exception.__str__


@dataclass(frozen=True)
class TickRecord:
    """What one service tick did."""

    tick: int
    version: int
    reports_folded: int
    targets_republished: int
    staleness: int
    epoch_steps: int
    push_messages: int
    converged_fraction: float
    elapsed_seconds: float

    def to_dict(self) -> Dict:
        """JSON-friendly record."""
        return {
            "tick": self.tick,
            "version": self.version,
            "reports_folded": self.reports_folded,
            "targets_republished": self.targets_republished,
            "staleness": self.staleness,
            "epoch_steps": self.epoch_steps,
            "push_messages": self.push_messages,
            "converged_fraction": self.converged_fraction,
            "elapsed_seconds": self.elapsed_seconds,
        }


class ReputationService:
    """Long-running reputation aggregation behind an ingest/query split.

    Parameters
    ----------
    overlay:
        The peer topology: an existing
        :class:`~repro.network.mutable.MutableOverlay`, or an ``int`` to
        grow a fresh preferential-attachment overlay of that many peers
        from the service seed.
    config:
        Gossip knobs for the per-tick epoch
        (:class:`~repro.core.backend.GossipConfig`); ``config.rng`` is
        ignored — every stream derives from ``seed``.
    backend:
        Registered gossip backend name or ``"auto"`` (sparse/sharded at
        scale; the runtime steers ``"auto"`` to a fixed-budget-capable
        engine for the accuracy stop rule).
    seed:
        Single replay root: topology growth, epoch streams, everything.
    high_watermark:
        Ingest-queue shed threshold (see
        :class:`~repro.service.queue.ReportQueue`).
    batch_size:
        Maximum reports folded per tick.
    epoch_tol, block_steps:
        Accuracy stop rule of the per-tick epoch (see
        :class:`~repro.runtime.dynamics.DynamicReputationRuntime`).
    attachment_m:
        Edges per peer when growing an overlay from an ``int``.

    Examples
    --------
    >>> from repro.service import ReputationService, TrustReport
    >>> service = ReputationService(40, seed=5, batch_size=8)
    >>> service.submit_batch([TrustReport(0, 3, 0.9), TrustReport(1, 3, 0.7)])
    2
    >>> service.tick().reports_folded
    2
    >>> service.snapshot().version
    1
    """

    def __init__(
        self,
        overlay: Union[MutableOverlay, int],
        *,
        config: Optional[GossipConfig] = None,
        backend: str = "auto",
        seed: int = 0,
        high_watermark: int = 50_000,
        batch_size: int = 1024,
        epoch_tol: float = 1e-3,
        block_steps: int = 4,
        attachment_m: int = 2,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._seed = int(seed)
        root = np.random.SeedSequence(self._seed)
        if isinstance(overlay, int):
            overlay = MutableOverlay.grow_preferential(
                overlay,
                m=attachment_m,
                rng=np.random.default_rng(
                    stateless_child_sequence(root, TOPOLOGY_STREAM_KEY)
                ),
            )
        self._overlay = overlay
        self._trust = TrustMatrix(overlay.max_peer_id + 1)
        self._runtime = DynamicReputationRuntime(
            overlay,
            config=config,
            backend=backend,
            warm_start=True,
            stop_rule="accuracy",
            epoch_tol=epoch_tol,
            block_steps=block_steps,
            attachment_m=attachment_m,
        )
        # Zero initial trust: before any report arrives every published
        # opinion is 0 (the paper's stranger default).
        self._runtime.initialize(
            stateless_child_sequence(root, RUNTIME_STREAM_KEY), opinions=0.0
        )
        self._queue = ReportQueue(high_watermark=high_watermark)
        self._batch_size = int(batch_size)
        self._live = np.zeros(overlay.max_peer_id + 1, dtype=bool)
        self._live[overlay.peer_ids()] = True
        self._tick_count = 0
        self._reports_folded = 0
        self._version = -1
        # Single-consumer fold lock: tick() is serialized; queries never
        # take it (they read the snapshot reference, an atomic load).
        self._fold_lock = threading.Lock()
        self._snapshot = self._build_snapshot(staleness=0)

    # -- ingest (producers, thread-safe) -------------------------------------

    @property
    def queue(self) -> ReportQueue:
        """The ingest queue (exposed for stats and tests)."""
        return self._queue

    @property
    def overlay(self) -> MutableOverlay:
        """The peer topology the service gossips over."""
        return self._overlay

    @property
    def backend(self) -> str:
        """Resolved gossip backend every epoch runs on."""
        return self._runtime.backend

    @property
    def num_peers(self) -> int:
        """Peers in the service overlay."""
        return self._overlay.num_peers

    def _coerce(self, report: ReportLike) -> TrustReport:
        if not isinstance(report, TrustReport):
            report = TrustReport(int(report[0]), int(report[1]), float(report[2]))
        for pid in (report.observer, report.target):
            if pid >= self._live.shape[0] or not self._live[pid]:
                raise UnknownPeerError(pid)
        return report

    def submit_report(self, observer: int, target: int, value: float) -> None:
        """Queue one trust report.

        Raises
        ------
        UnknownPeerError
            ``observer`` or ``target`` is not a live overlay peer.
        BackpressureError
            The ingest queue is at its high watermark; the report is
            shed and the caller should retry after a tick.
        """
        self._queue.put(self._coerce(TrustReport(int(observer), int(target), float(value))))

    def submit_batch(self, reports: Iterable[ReportLike]) -> int:
        """Queue many reports; return how many were accepted.

        Validation failures raise; watermark shedding does not — the
        accepted count is always a prefix of the submitted batch (see
        :meth:`~repro.service.queue.ReportQueue.put_many`), and shed
        reports are visible in ``queue.rejected_total``.
        """
        return self._queue.put_many(self._coerce(r) for r in reports)

    # -- queries (lock-free) -------------------------------------------------

    def snapshot(self) -> ReputationSnapshot:
        """The current immutable snapshot (atomic reference read)."""
        return self._snapshot

    def get_reputation(self, peer_id: int) -> float:
        """Serve ``peer_id``'s reputation from the current snapshot."""
        return self._snapshot.get(peer_id)

    def top_k(self, k: int = 10) -> List[Tuple[int, float]]:
        """The current top-``k`` peers by reputation."""
        return self._snapshot.top_k(k)

    def snapshot_info(self) -> Dict:
        """Metadata of the current snapshot plus queue stats."""
        info = self._snapshot.info()
        info["queue"] = self._queue.stats()
        info["backend"] = self.backend
        return info

    # -- the fold loop (single consumer) -------------------------------------

    def tick(self) -> TickRecord:
        """Drain one batch, fold it, run one warm epoch, swap the snapshot.

        Must be driven by one consumer at a time (the
        :class:`ServiceLoop` thread, a replay driver, or a test); a
        second concurrent caller blocks on the fold lock.
        """
        with self._fold_lock:
            started = time.perf_counter()
            batch = self._queue.drain(self._batch_size)
            changed = self._fold(batch)
            epoch_record = self._runtime.step()
            self._tick_count += 1
            self._reports_folded += len(batch)
            # Staleness is measured at publication: everything accepted
            # after the drain above is visible here and correctly
            # counted against the snapshot being swapped in.
            snapshot = self._build_snapshot(staleness=self._queue.pending)
            self._snapshot = snapshot
            return TickRecord(
                tick=self._tick_count,
                version=snapshot.version,
                reports_folded=len(batch),
                targets_republished=len(changed),
                staleness=snapshot.staleness,
                epoch_steps=epoch_record.steps,
                push_messages=epoch_record.push_messages,
                converged_fraction=epoch_record.converged_fraction,
                elapsed_seconds=time.perf_counter() - started,
            )

    def drain_pending(self, *, max_ticks: Optional[int] = None) -> List[TickRecord]:
        """Tick until the ingest queue is empty; return the tick records.

        Runs at least one tick (an idle tick still advances the epoch
        and publishes a fresh snapshot version).
        """
        records = [self.tick()]
        while self._queue.pending and (max_ticks is None or len(records) < max_ticks):
            records.append(self.tick())
        return records

    def _fold(self, batch: Sequence[TrustReport]) -> List[int]:
        """Apply one drained batch; re-announce changed column aggregates.

        Returns the (sorted) re-published target ids. The fold is pure
        matrix state application, so the *final* published opinions
        after a stream is fully folded do not depend on how the stream
        was batched — the replay byte-identity guarantee.
        """
        changed = set()
        for report in batch:
            self._trust.set(report.observer, report.target, report.value)
            changed.add(report.target)
        republished = sorted(changed)
        for target in republished:
            self._runtime.republish_opinion(
                target, self._trust.column_mean_over_all(target)
            )
        return republished

    def _build_snapshot(self, *, staleness: int) -> ReputationSnapshot:
        pids = self._overlay.peer_ids()
        reputations = self._runtime.opinions()
        estimates = self._runtime.estimates() if self._tick_count else np.zeros_like(reputations)
        self._version += 1
        return ReputationSnapshot(
            version=self._version,
            epoch=self._tick_count,
            created_at=self._tick_count,
            peer_ids=pids,
            reputations=reputations,
            network_estimate=float(np.mean(estimates)),
            staleness=int(staleness),
            reports_folded=self._reports_folded,
        )


class ServiceLoop:
    """Background thread that keeps draining the queue, one tick at a time.

    The serving deployment shape: producers submit concurrently, the
    loop folds and swaps snapshots, readers query lock-free. ``interval``
    throttles the epoch rate (seconds between tick starts, 0 = fold as
    fast as reports arrive); a lower epoch rate trades staleness for
    fold/gossip work — the curve ``benchmarks/bench_service.py``
    records.

    Examples
    --------
    >>> from repro.service import ReputationService, ServiceLoop
    >>> service = ReputationService(40, seed=5)
    >>> loop = ServiceLoop(service)
    >>> _ = loop.start()
    >>> service.submit_report(0, 3, 0.9)
    >>> loop.stop()
    >>> _ = service.drain_pending()
    >>> service.snapshot().reports_folded
    1
    """

    def __init__(
        self,
        service: ReputationService,
        *,
        interval: float = 0.0,
        idle_sleep: float = 0.005,
    ):
        if interval < 0 or idle_sleep <= 0:
            raise ValueError("interval must be >= 0 and idle_sleep > 0")
        self._service = service
        self._interval = float(interval)
        self._idle_sleep = float(idle_sleep)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._ticks = 0
        self._error: Optional[BaseException] = None

    @property
    def ticks(self) -> int:
        """Ticks completed so far."""
        return self._ticks

    @property
    def running(self) -> bool:
        """Whether the loop thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that killed the loop, if any."""
        return self._error

    def start(self) -> "ServiceLoop":
        """Start the consumer thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Signal the loop to stop and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if self._error is not None:
            raise self._error

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                started = time.perf_counter()
                record = self._service.tick()
                self._ticks += 1
                if self._interval:
                    remaining = self._interval - (time.perf_counter() - started)
                    if remaining > 0:
                        self._stop.wait(remaining)
                elif record.reports_folded == 0:
                    # Idle: nothing arrived since the last fold.
                    self._stop.wait(self._idle_sleep)
        except BaseException as error:  # pragma: no cover - surfaced via stop()
            self._error = error


__all__ = [
    "BackpressureError",
    "ReputationService",
    "ServiceLoop",
    "TickRecord",
    "UnknownPeerError",
]
