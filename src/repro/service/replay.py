"""Deterministic replay: a report trace in, a canonical digest out.

``python -m repro.service replay trace.jsonl`` rebuilds a service from a
seed, feeds the trace through the real ingest queue/fold/epoch path, and
prints a **canonical record** that is byte-identical

- across runs (every stream derives from the seed), and
- across ingest batch sizes (the record covers only quantities that are
  pure functions of ``(seed, report stream)``).

What makes batch-size independence possible: the fold is pure state
application on the :class:`~repro.trust.matrix.TrustMatrix` (the final
matrix — and therefore every published column aggregate — depends on the
stream order alone, not on how ticks partitioned it), and the closing
verification round draws from a stream keyed by ``(seed, total reports
folded)`` rather than by tick count. Per-tick trajectories (how many
gossip steps each intermediate warm epoch took) *do* depend on the
batching — they are reported separately in the non-canonical ``run``
section, which byte-identity checks must exclude (the CLI omits it
unless ``--verbose``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.service.queue import BackpressureError
from repro.service.reports import TrustReport, read_trace
from repro.service.service import ReputationService
from repro.utils.rng import stateless_child_sequence

#: Base child key of the closing verification round's stream; the total
#: folded-report count is added so the key is a pure function of the
#: stream content, never of tick/batch structure.
VERIFY_STREAM_KEY = 0x5E21CE02


def replay_trace(
    trace: Union[str, Path, Sequence[TrustReport]],
    *,
    num_peers: Optional[int] = None,
    seed: int = 7,
    batch_size: int = 256,
    backend: str = "auto",
    high_watermark: Optional[int] = None,
    config: Optional[GossipConfig] = None,
    attachment_m: int = 2,
    top: int = 10,
    include_run: bool = False,
) -> Dict:
    """Replay a report trace through the service; return the canonical record.

    Parameters
    ----------
    trace:
        Path to a JSON-lines trace file, or an in-memory report list.
    num_peers:
        Overlay size; defaults to ``max referenced peer id + 1``.
    seed:
        The replay root (topology, epoch streams, verification round).
    batch_size:
        Ingest batch per tick — changing it must not change the record.
    backend:
        Gossip backend for the per-tick epochs and verification round.
    high_watermark:
        Queue watermark; defaults to ``2 * batch_size`` so the replay
        driver exercises real backpressure (it ticks to drain whenever
        a submit is shed — deterministic, single-threaded).
    config:
        Epoch gossip knobs; streams still derive from ``seed``.
    attachment_m:
        Preferential-attachment degree of the grown overlay.
    top:
        How many leaders to list in the record.
    include_run:
        Attach the batching-dependent ``run`` section (tick count,
        per-tick epoch steps, max staleness). NOT byte-identical across
        batch sizes — byte-identity checks must leave this off.

    Examples
    --------
    >>> from repro.service.reports import generate_reports
    >>> reports = generate_reports(60, 16, rng=3)
    >>> small = replay_trace(reports, seed=9, batch_size=16)
    >>> small == replay_trace(reports, seed=9, batch_size=5)
    True
    >>> small["reports"]["folded"]
    60
    """
    reports = list(read_trace(trace)) if isinstance(trace, (str, Path)) else list(trace)
    if num_peers is None:
        highest = max((max(r.observer, r.target) for r in reports), default=1)
        num_peers = highest + 1
    if num_peers < 2:
        raise ValueError(f"num_peers must be >= 2, got {num_peers}")
    service = ReputationService(
        num_peers,
        config=config,
        backend=backend,
        seed=seed,
        batch_size=batch_size,
        high_watermark=high_watermark if high_watermark is not None else 2 * batch_size,
        attachment_m=attachment_m,
    )

    tick_records = []
    for report in reports:
        while True:
            try:
                service.submit_report(report.observer, report.target, report.value)
                break
            except BackpressureError:
                # Deterministic shed handling: fold a batch, then retry.
                tick_records.append(service.tick())
    tick_records.extend(service.drain_pending())

    snapshot = service.snapshot()
    graph, _ = service.overlay.snapshot()
    opinions = np.asarray(snapshot.reputations, dtype=np.float64)

    # Closing verification round: cold gossip of the final published
    # opinions, keyed by (seed, reports folded) — a pure function of the
    # stream, so it is identical for every batching and genuinely
    # exercises the configured backend end to end.
    verify_config = GossipConfig(
        xi=(config.xi if config is not None else 1e-5),
        max_steps=(config.max_steps if config is not None else 10_000),
        rng=stateless_child_sequence(
            np.random.SeedSequence(seed), VERIFY_STREAM_KEY + len(reports)
        ),
    )
    values = opinions.reshape(-1, 1).copy()
    outcome = run_backend(
        graph, values, np.ones_like(values), config=verify_config, backend=service.backend
    )
    estimates = outcome.values[:, 0] / outcome.weights[:, 0]
    truth = float(opinions.mean())

    record = {
        "replay": {
            "seed": seed,
            "num_peers": int(graph.num_nodes),
            "num_edges": int(graph.num_edges),
            "backend": service.backend,
            "attachment_m": attachment_m,
        },
        "reports": {
            "total": len(reports),
            "folded": snapshot.reports_folded,
            "rejected_final": 0,  # every shed report was retried until accepted
        },
        "snapshot": {
            "digest": snapshot.digest(),
            "reports_folded": snapshot.reports_folded,
            "staleness": snapshot.staleness,
            "num_peers": snapshot.num_peers,
        },
        "top": [[pid, value] for pid, value in snapshot.top_k(min(top, num_peers))],
        "verify": {
            "estimates_sha256": hashlib.sha256(
                np.ascontiguousarray(estimates).tobytes()
            ).hexdigest(),
            "true_mean": truth,
            "max_abs_error": float(np.abs(estimates - truth).max()),
            "converged_fraction": float(np.mean(outcome.converged)),
        },
    }
    if include_run:
        record["run"] = {
            "batch_size": batch_size,
            "ticks": len(tick_records),
            "final_version": snapshot.version,
            "epoch_steps": [r.epoch_steps for r in tick_records],
            "max_staleness": max((r.staleness for r in tick_records), default=0),
        }
    return record


def canonical_json(record: Dict) -> str:
    """Render a replay record in the canonical byte-stable form.

    ``sort_keys`` + fixed indentation + trailing newline: two records that
    compare equal serialize to identical bytes, which is what the replay
    golden test and the CI smoke leg diff.
    """
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


__all__ = ["replay_trace", "canonical_json", "VERIFY_STREAM_KEY"]
