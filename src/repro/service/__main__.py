"""Command line for the reputation service.

``python -m repro.service serve``      — run the HTTP service
``python -m repro.service replay``     — deterministic trace replay
``python -m repro.service make-trace`` — write a seeded synthetic trace
"""

from __future__ import annotations

import argparse
import sys

from repro.core.backend import available_backends
from repro.service.replay import canonical_json, replay_trace
from repro.service.reports import generate_reports, write_trace

_EPILOG = (
    "Docs: docs/service.md (API + ops notes on staleness, backpressure and "
    "replay), docs/architecture.md (layer map), docs/benchmarks.md "
    "(artifact reference)."
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Reputation-as-a-service runtime over the gossip backends.",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run the HTTP service", epilog=_EPILOG
    )
    serve.add_argument("--peers", type=int, default=500, help="overlay size (default 500)")
    serve.add_argument("--seed", type=int, default=0, help="replay root (default 0)")
    serve.add_argument(
        "--backend",
        default="auto",
        help=f"gossip backend: auto or one of {', '.join(available_backends())}",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="bind port (default 8080)")
    serve.add_argument(
        "--interval",
        type=float,
        default=0.25,
        help="seconds between service ticks (default 0.25; lower = fresher, costlier)",
    )
    serve.add_argument(
        "--high-watermark",
        type=int,
        default=50_000,
        help="ingest queue shed threshold (default 50000)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1024, help="reports folded per tick (default 1024)"
    )

    replay = sub.add_parser(
        "replay",
        help="replay a JSON-lines trace; print the canonical record",
        epilog=_EPILOG,
    )
    replay.add_argument("trace", help="JSON-lines trace file (see make-trace)")
    replay.add_argument("--peers", type=int, default=None,
                        help="overlay size (default: max referenced id + 1)")
    replay.add_argument("--seed", type=int, default=7, help="replay root (default 7)")
    replay.add_argument("--batch-size", type=int, default=256,
                        help="ingest batch per tick — must NOT change the output (default 256)")
    replay.add_argument("--backend", default="auto", help="gossip backend (default auto)")
    replay.add_argument("--top", type=int, default=10, help="leaders to list (default 10)")
    replay.add_argument(
        "--verbose",
        action="store_true",
        help="attach the batching-dependent 'run' section (breaks byte-identity)",
    )

    make = sub.add_parser(
        "make-trace",
        help="write a seeded synthetic report trace",
        epilog=_EPILOG,
    )
    make.add_argument("path", help="output trace file (JSON lines)")
    make.add_argument("--reports", type=int, default=1000, help="report count (default 1000)")
    make.add_argument("--peers", type=int, default=100, help="identity space (default 100)")
    make.add_argument("--seed", type=int, default=7, help="workload seed (default 7)")
    make.add_argument("--noise", type=float, default=0.1,
                      help="report noise stddev (default 0.1)")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        from repro.service.httpd import serve_forever
        from repro.service.service import ReputationService

        service = ReputationService(
            args.peers,
            backend=args.backend,
            seed=args.seed,
            high_watermark=args.high_watermark,
            batch_size=args.batch_size,
        )
        serve_forever(service, host=args.host, port=args.port, interval=args.interval)
        return 0
    if args.command == "replay":
        record = replay_trace(
            args.trace,
            num_peers=args.peers,
            seed=args.seed,
            batch_size=args.batch_size,
            backend=args.backend,
            top=args.top,
            include_run=args.verbose,
        )
        sys.stdout.write(canonical_json(record))
        return 0
    if args.command == "make-trace":
        reports = generate_reports(
            args.reports, args.peers, rng=args.seed, noise=args.noise
        )
        count = write_trace(args.path, reports)
        print(f"wrote {count} reports over {args.peers} peers to {args.path}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
