"""Immutable, versioned reputation snapshots — the lock-free read path.

The service answers every query from a :class:`ReputationSnapshot`
published by the fold loop. Snapshots are *immutable* (frozen dataclass,
numpy arrays with the write flag cleared) and *versioned* (``version``
increments by exactly 1 per swap), and the service swaps them in with a
single reference assignment — atomic under the interpreter, so readers
never take a lock and never observe a half-built state: a query sees
either the previous complete snapshot or the next complete one.

Every snapshot also carries its own **staleness bound**: the number of
reports that were accepted by the ingest queue but not yet folded when
the snapshot was published. A reader therefore knows exactly how far
behind the write stream its answer can be — the ops contract
``docs/service.md`` documents.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class ReputationSnapshot:
    """One immutable, versioned view of every peer's reputation.

    Attributes
    ----------
    version:
        Monotonic swap counter (the initial empty snapshot is 0).
    epoch:
        Gossip epochs the runtime has completed when this was published.
    created_at:
        Service tick that published the snapshot (0 = construction).
    peer_ids:
        Live peer ids, ascending (read-only array).
    reputations:
        ``reputations[i]`` is peer ``peer_ids[i]``'s served reputation —
        the eq.-1 column aggregate of every folded report (read-only).
    network_estimate:
        The gossip layer's network-wide mean-reputation estimate
        (the warm-start runtime's fixpoint after this epoch).
    staleness:
        Reports accepted but not yet folded at publication — the
        snapshot's data-freshness bound.
    reports_folded:
        Total reports folded into this snapshot since service start.

    Examples
    --------
    >>> import numpy as np
    >>> snap = ReputationSnapshot(version=1, epoch=1, created_at=1,
    ...                           peer_ids=np.array([0, 1, 4]),
    ...                           reputations=np.array([0.2, 0.9, 0.5]),
    ...                           network_estimate=0.53, staleness=0, reports_folded=12)
    >>> snap.get(1)
    0.9
    >>> snap.get(3)  # never reported -> the paper's zero initial trust
    0.0
    >>> snap.top_k(2)
    [(1, 0.9), (4, 0.5)]
    """

    version: int
    epoch: int
    created_at: int
    peer_ids: np.ndarray = field(repr=False)
    reputations: np.ndarray = field(repr=False)
    network_estimate: float
    staleness: int
    reports_folded: int

    def __post_init__(self) -> None:
        pids = np.asarray(self.peer_ids, dtype=np.int64)
        reps = np.asarray(self.reputations, dtype=np.float64)
        if pids.shape != reps.shape:
            raise ValueError(
                f"peer_ids {pids.shape} and reputations {reps.shape} must align"
            )
        if pids.size and np.any(np.diff(pids) <= 0):
            raise ValueError("peer_ids must be strictly ascending")
        if self.version < 0 or self.staleness < 0 or self.reports_folded < 0:
            raise ValueError("version/staleness/reports_folded must be >= 0")
        # Freeze: queries run lock-free on these arrays, so nothing may
        # mutate them after publication. object.__setattr__ because the
        # dataclass itself is frozen.
        pids = pids.copy()
        reps = reps.copy()
        pids.setflags(write=False)
        reps.setflags(write=False)
        object.__setattr__(self, "peer_ids", pids)
        object.__setattr__(self, "reputations", reps)

    @property
    def num_peers(self) -> int:
        """Peers covered by this snapshot."""
        return int(self.peer_ids.shape[0])

    def get(self, peer_id: int, default: float = 0.0) -> float:
        """Reputation of ``peer_id``; ``default`` (zero trust) if unknown."""
        index = int(np.searchsorted(self.peer_ids, peer_id))
        if index >= self.peer_ids.shape[0] or int(self.peer_ids[index]) != peer_id:
            return float(default)
        return float(self.reputations[index])

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` highest-reputation peers as ``(peer_id, reputation)``.

        Deterministic: ties break towards the smaller peer id.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, self.num_peers)
        # Sort by (-reputation, peer_id): lexsort's last key is primary.
        order = np.lexsort((self.peer_ids, -self.reputations))[:k]
        return [(int(self.peer_ids[i]), float(self.reputations[i])) for i in order]

    def digest(self) -> str:
        """SHA-256 over the reputation state (ids + values), hex-encoded.

        Two snapshots serving identical reputations have identical
        digests regardless of how ingest was batched — the replay
        byte-identity pin.
        """
        payload = hashlib.sha256()
        payload.update(np.ascontiguousarray(self.peer_ids).tobytes())
        payload.update(np.ascontiguousarray(self.reputations).tobytes())
        return payload.hexdigest()

    def info(self) -> Dict:
        """JSON-friendly metadata (no per-peer payload)."""
        return {
            "version": self.version,
            "epoch": self.epoch,
            "created_at": self.created_at,
            "num_peers": self.num_peers,
            "network_estimate": self.network_estimate,
            "staleness": self.staleness,
            "reports_folded": self.reports_folded,
            "digest": self.digest(),
        }
