"""Trust reports: the unit of ingest, plus trace files and seeded workloads.

A :class:`TrustReport` is one observed interaction — *observer* rates
*target* with a trust value in ``[0, 1]`` (the paper's admissible
range, Section 4). Reports stream into the service's
:class:`repro.service.queue.ReportQueue`; a replayable *trace* is just
the same stream persisted as JSON lines, one compact
``{"o": observer, "t": target, "v": value}`` object per line, so a
recorded production stream and a seeded synthetic workload replay
through exactly the same path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class TrustReport:
    """One streamed trust observation: ``observer`` rates ``target``.

    Examples
    --------
    >>> report = TrustReport(observer=3, target=7, value=0.8)
    >>> report.to_json()
    '{"o": 3, "t": 7, "v": 0.8}'
    >>> TrustReport.from_json('{"o": 3, "t": 7, "v": 0.8}') == report
    True
    """

    observer: int
    target: int
    value: float

    def __post_init__(self) -> None:
        if self.observer < 0 or self.target < 0:
            raise ValueError(
                f"peer ids must be >= 0, got observer={self.observer} target={self.target}"
            )
        if self.observer == self.target:
            raise ValueError(f"self-report t[{self.observer},{self.observer}] is not allowed")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"trust value must be in [0, 1], got {self.value}")

    def to_json(self) -> str:
        """Compact one-line JSON form (the trace-file row format)."""
        return json.dumps({"o": self.observer, "t": self.target, "v": self.value})

    @classmethod
    def from_json(cls, line: str) -> "TrustReport":
        """Parse one trace-file row."""
        row = json.loads(line)
        return cls(observer=int(row["o"]), target=int(row["t"]), value=float(row["v"]))


def write_trace(path: Union[str, Path], reports: Iterable[TrustReport]) -> int:
    """Write ``reports`` as a JSON-lines trace file; return the row count."""
    count = 0
    with open(path, "w") as handle:
        for report in reports:
            handle.write(report.to_json())
            handle.write("\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TrustReport]:
    """Read a JSON-lines trace file (blank lines ignored)."""
    reports: List[TrustReport] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                reports.append(TrustReport.from_json(line))
    return reports


def generate_reports(
    num_reports: int,
    num_peers: int,
    *,
    rng: RngLike = None,
    noise: float = 0.1,
    zipf_exponent: float = 1.1,
) -> List[TrustReport]:
    """Seeded synthetic report workload over ``num_peers`` identities.

    Each peer carries a latent service quality ``q_j ~ U(0, 1)``; a
    report is a uniformly drawn observer rating a popularity-skewed
    target (Zipf-like draw, the transaction concentration a power-law
    overlay induces) with ``q_j`` plus truncated Gaussian noise. The
    stream is a pure function of the seed, so benchmark and soak runs
    replay bit-identically.

    Examples
    --------
    >>> a = generate_reports(4, 10, rng=7)
    >>> b = generate_reports(4, 10, rng=7)
    >>> a == b
    True
    >>> all(0.0 <= r.value <= 1.0 and r.observer != r.target for r in a)
    True
    """
    if num_peers < 2:
        raise ValueError(f"num_peers must be >= 2, got {num_peers}")
    if num_reports < 0:
        raise ValueError(f"num_reports must be >= 0, got {num_reports}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    generator = as_generator(rng)
    quality = generator.random(num_peers)
    # Popularity-skewed targets: rank r drawn with weight r^-s over a
    # seeded random permutation of the identity space.
    ranks = np.arange(1, num_peers + 1, dtype=np.float64) ** (-float(zipf_exponent))
    weights = ranks / ranks.sum()
    popularity = generator.permutation(num_peers)
    reports: List[TrustReport] = []
    targets = generator.choice(num_peers, size=num_reports, p=weights)
    observers = generator.integers(0, num_peers, size=num_reports)
    noise_draws = generator.normal(0.0, noise, size=num_reports) if noise else np.zeros(num_reports)
    for i in range(num_reports):
        target = int(popularity[targets[i]])
        observer = int(observers[i])
        if observer == target:
            observer = (observer + 1) % num_peers
        value = float(np.clip(quality[target] + noise_draws[i], 0.0, 1.0))
        reports.append(TrustReport(observer=observer, target=target, value=value))
    return reports
