"""Reputation-as-a-service: streaming ingest, versioned snapshots, replay.

The serving layer over the gossip library. Reports stream into a bounded
:class:`ReportQueue`; a single consumer (:class:`ServiceLoop` or a
replay driver) folds batches into the trust matrix, advances one
warm-start gossip epoch per tick, and atomically publishes an immutable
:class:`ReputationSnapshot` that queries read lock-free. Three surfaces:

- in-process: :class:`ReputationService` (``submit_report`` /
  ``submit_batch`` / ``get_reputation`` / ``top_k`` / ``snapshot_info``),
- HTTP: ``python -m repro.service serve`` (stdlib ``http.server``),
- replay: ``python -m repro.service replay trace.jsonl`` — byte-identical
  output for a fixed ``(seed, report stream)``, at any ingest batch size.

See ``docs/service.md`` for the API reference and operational notes.
"""

from repro.service.queue import BackpressureError, ReportQueue, ServiceError
from repro.service.replay import canonical_json, replay_trace
from repro.service.reports import (
    TrustReport,
    generate_reports,
    read_trace,
    write_trace,
)
from repro.service.service import (
    ReputationService,
    ServiceLoop,
    TickRecord,
    UnknownPeerError,
)
from repro.service.snapshot import ReputationSnapshot

__all__ = [
    "BackpressureError",
    "ReportQueue",
    "ReputationService",
    "ReputationSnapshot",
    "ServiceError",
    "ServiceLoop",
    "TickRecord",
    "TrustReport",
    "UnknownPeerError",
    "canonical_json",
    "generate_reports",
    "read_trace",
    "replay_trace",
    "write_trace",
]
