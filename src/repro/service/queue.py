"""Bounded, thread-safe ingest queue with high-watermark backpressure.

The service's write path: producers (HTTP handlers, the soak scenario,
the replay driver) :meth:`ReportQueue.put` reports, the
:class:`repro.service.service.ServiceLoop` drains them in batches. The
queue is *bounded* and sheds load explicitly — once the pending count
reaches the high watermark, every further ``put`` raises the typed
:class:`BackpressureError` until a drain brings the backlog back under
the mark. Shedding at ingest (rather than blocking the fold or growing
without bound) keeps the staleness bound of every published snapshot
honest: a report is either accepted — and counted against the next
snapshot's staleness — or visibly rejected, never silently delayed.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Iterable, List

from repro.core.errors import GossipError

from repro.service.reports import TrustReport


class ServiceError(GossipError):
    """Base class for reputation-service failures."""


class BackpressureError(ServiceError):
    """The ingest queue hit its high watermark and sheds this report.

    Attributes
    ----------
    pending:
        Reports queued (accepted, not yet drained) at rejection time.
    high_watermark:
        The configured shed threshold.

    Examples
    --------
    >>> error = BackpressureError(pending=8, high_watermark=8)
    >>> error.pending, error.high_watermark
    (8, 8)
    """

    def __init__(self, pending: int, high_watermark: int):
        self.pending = pending
        self.high_watermark = high_watermark
        super().__init__(
            f"ingest queue at high watermark ({pending}/{high_watermark} pending); "
            "report shed — retry after the service loop drains"
        )


class ReportQueue:
    """Thread-safe bounded FIFO of :class:`TrustReport` with load shedding.

    Parameters
    ----------
    high_watermark:
        Pending-report threshold at which :meth:`put` starts raising
        :class:`BackpressureError`. Draining below the mark resumes
        acceptance immediately (no hysteresis: the bound is exact, so
        ``pending <= high_watermark`` always holds).

    Examples
    --------
    >>> queue = ReportQueue(high_watermark=2)
    >>> queue.put(TrustReport(0, 1, 0.9))
    >>> queue.put(TrustReport(1, 0, 0.4))
    >>> queue.put(TrustReport(0, 2, 0.5))
    Traceback (most recent call last):
        ...
    repro.service.queue.BackpressureError: ingest queue at high watermark (2/2 pending); report shed — retry after the service loop drains
    >>> [r.target for r in queue.drain(8)], queue.pending, queue.rejected_total
    ([1, 0], 0, 1)
    """

    def __init__(self, high_watermark: int = 50_000):
        if high_watermark < 1:
            raise ValueError(f"high_watermark must be >= 1, got {high_watermark}")
        self._high_watermark = int(high_watermark)
        self._items: Deque[TrustReport] = deque()
        self._lock = threading.Lock()
        self._accepted = 0
        self._rejected = 0
        self._drained = 0

    # -- producer side -------------------------------------------------------

    def put(self, report: TrustReport) -> None:
        """Enqueue one report, or shed it with :class:`BackpressureError`."""
        with self._lock:
            if len(self._items) >= self._high_watermark:
                self._rejected += 1
                raise BackpressureError(len(self._items), self._high_watermark)
            self._items.append(report)
            self._accepted += 1

    def put_many(self, reports: Iterable[TrustReport]) -> int:
        """Enqueue reports until the watermark sheds the rest; return accepted count.

        The batch ingest path (HTTP ``POST /reports``, the soak
        scenario): acceptance is prefix-greedy — reports are taken in
        order until the first shed, and everything after it in the same
        batch is shed too (counted in :attr:`rejected_total`), so an
        accepted batch is always a prefix of the submitted one.
        """
        batch = list(reports)
        with self._lock:
            room = self._high_watermark - len(self._items)
            accepted = max(0, min(room, len(batch)))
            self._items.extend(batch[:accepted])
            self._accepted += accepted
            self._rejected += len(batch) - accepted
            return accepted

    # -- consumer side -------------------------------------------------------

    def drain(self, max_batch: int) -> List[TrustReport]:
        """Dequeue up to ``max_batch`` reports in arrival order."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        with self._lock:
            take = min(max_batch, len(self._items))
            batch = [self._items.popleft() for _ in range(take)]
            self._drained += take
            return batch

    # -- stats ---------------------------------------------------------------

    @property
    def high_watermark(self) -> int:
        """Configured shed threshold."""
        return self._high_watermark

    @property
    def pending(self) -> int:
        """Reports accepted but not yet drained."""
        with self._lock:
            return len(self._items)

    @property
    def accepted_total(self) -> int:
        """Reports ever accepted."""
        with self._lock:
            return self._accepted

    @property
    def rejected_total(self) -> int:
        """Reports ever shed at the watermark."""
        with self._lock:
            return self._rejected

    @property
    def drained_total(self) -> int:
        """Reports ever handed to the fold."""
        with self._lock:
            return self._drained

    def __len__(self) -> int:
        return self.pending

    def stats(self) -> dict:
        """One consistent snapshot of all counters."""
        with self._lock:
            return {
                "pending": len(self._items),
                "high_watermark": self._high_watermark,
                "accepted_total": self._accepted,
                "rejected_total": self._rejected,
                "drained_total": self._drained,
            }
