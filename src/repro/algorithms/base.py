"""The shared protocol every comparison algorithm is adapted to.

The paper's headline claim is comparative — differential gossip beats
normal push, GossipTrust-style uncalibrated estimates and flooding on
accuracy, rounds and message overhead. To measure that head-to-head,
every comparator (and differential gossip itself) is wrapped as an
:class:`AggregationAlgorithm`: ``prepare(graph, trust, config)`` binds
it to one world, and ``run(rng)`` executes one aggregation producing an
:class:`AlgorithmOutcome` — the unified metric surface the tournament
leaderboard (:mod:`repro.experiments.tournament`) compares like with
like.

The shared task: estimate the global reputation of a set of target
peers from one :class:`~repro.trust.matrix.TrustMatrix`. Each algorithm
defines its *own* exact aggregate (differential gossip's observer mean,
push-sum's all-nodes mean, EigenTrust's damped eigenvector, ...), so
``AlgorithmOutcome.truth`` is that algorithm's target and ``rms_error``
measures how far the run landed from it — gossip algorithms pay gossip
noise, exact fixpoint solvers pay only seed perturbation. Robustness is
measured separately, by running the same algorithm on a clean and a
poisoned world under one seed
(:func:`repro.attacks.evaluate.attack_impact` with ``algorithm=``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.backend import GossipConfig
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike


@dataclass
class AlgorithmOutcome:
    """What one aggregation run produced, on the unified metric surface.

    Examples
    --------
    >>> from repro import get_algorithm
    >>> from repro.network.topology_example import example_network
    >>> from repro.trust.matrix import complete_trust_matrix
    >>> graph = example_network()
    >>> trust = complete_trust_matrix(graph.num_nodes, rng=1)
    >>> outcome = get_algorithm("flooding").prepare(graph, trust, targets=[0, 3]).run()
    >>> outcome.estimates.shape
    (2,)
    >>> outcome.rms_error  # flooding computes the exact observer mean
    0.0
    >>> bool(outcome.messages_per_node > 0)
    True

    Attributes
    ----------
    algorithm:
        Canonical registry name of the algorithm that ran.
    estimates:
        Network-level estimate per tracked target, shape ``(T,)``.
    truth:
        The algorithm's own exact aggregate per target, shape ``(T,)``
        — the accuracy reference (see the module docstring).
    num_nodes:
        Number of participating peers.
    rounds:
        Synchronous rounds / cycles / iterations until the algorithm's
        own stop rule fired (the leaderboard's rounds-to-converge
        column).
    messages:
        Total network messages under the adapter's documented counting
        rule — every adapter docstring states exactly what one message
        is, so leaderboard columns compare like with like (this is the
        reconciliation of ``GossipOutcome.total_messages`` and
        ``FloodResult.messages_per_node``).
    converged:
        Whether the algorithm's own convergence criterion was met
        (``False`` means the iteration/step bound cut it off).
    wall_clock_seconds:
        Elapsed time of the ``run()`` call (stamped by
        :class:`PreparedAlgorithm`).
    node_estimates:
        Optional per-node view, shape ``(N, T)``, for algorithms whose
        peers hold individual estimates (gossip); ``None`` where every
        peer ends with the same value (exact fixpoints, flooding).
    raw:
        The adapter's native result object (e.g. a
        :class:`~repro.core.results.GossipOutcome`), for callers that
        need more than the shared surface.
    """

    algorithm: str
    estimates: np.ndarray
    truth: np.ndarray
    num_nodes: int
    rounds: int
    messages: int
    converged: bool
    wall_clock_seconds: float = 0.0
    node_estimates: Optional[np.ndarray] = field(default=None, repr=False)
    raw: object = field(default=None, repr=False)

    @property
    def rms_error(self) -> float:
        """Eq.-18-style RMS relative error of ``estimates`` vs ``truth``."""
        from repro.analysis.metrics import average_rms_error

        return average_rms_error(self.estimates[None, :], self.truth[None, :])

    @property
    def max_abs_error(self) -> float:
        """Worst absolute error of ``estimates`` against ``truth``."""
        if self.estimates.size == 0:
            return 0.0
        return float(np.abs(self.estimates - self.truth).max())

    @property
    def messages_per_node(self) -> float:
        """``messages / num_nodes`` — the per-peer overhead column."""
        return self.messages / self.num_nodes if self.num_nodes else 0.0


@dataclass
class PreparedAlgorithm:
    """An algorithm bound to one world, ready to ``run``.

    Returned by :meth:`AggregationAlgorithm.prepare`; holds the bound
    runner closure and stamps ``wall_clock_seconds`` on the outcome so
    every adapter is timed identically.
    """

    algorithm: str
    _runner: Callable[[RngLike], AlgorithmOutcome]

    def run(self, rng: RngLike = None) -> AlgorithmOutcome:
        """Execute one aggregation. ``rng`` overrides the prepared
        config's seed when given; ``None`` keeps the config's own
        ``rng`` (so a :class:`~repro.core.backend.GossipConfig` seeded
        at prepare time replays byte-identically)."""
        start = time.perf_counter()
        outcome = self._runner(rng)
        outcome.wall_clock_seconds = time.perf_counter() - start
        return outcome


@runtime_checkable
class AggregationAlgorithm(Protocol):
    """What the registry stores: a named comparison-algorithm adapter.

    ``uses_backend`` declares whether the algorithm routes through the
    gossip backend registry (and therefore whether a backend sweep is
    meaningful for it — the tournament's "× backend where applicable").
    """

    name: str
    uses_backend: bool

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        """Bind the algorithm to one world; return the runnable."""
        ...


def resolve_targets(trust: TrustMatrix, targets: Optional[Sequence[int]]) -> list:
    """Tracked target columns: the given ids, or every node."""
    if targets is None:
        return list(range(trust.num_nodes))
    out = [int(t) for t in targets]
    for t in out:
        if not 0 <= t < trust.num_nodes:
            raise ValueError(f"target {t} outside 0..{trust.num_nodes - 1}")
    return out
