"""The comparison-algorithm registry, mirroring :mod:`repro.core.backend`.

Seven algorithms ship built-in (registered by
:mod:`repro.algorithms.adapters`): ``diff-gossip``, ``push-sum``,
``push-pull``, ``gossip-trust``, ``eigentrust``, ``flooding`` and
``absolute-trust``. Third-party comparators plug in with
:func:`register_algorithm`; after registration the algorithm is
selectable everywhere an algorithm name is accepted — the attack engine
(:func:`repro.attacks.evaluate.attack_impact` with ``algorithm=``), the
scenario axis (:class:`repro.scenarios.spec.AlgorithmSpec`) and the
tournament leaderboard (:mod:`repro.experiments.tournament`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.algorithms.base import AggregationAlgorithm


class UnknownAlgorithmError(KeyError, ValueError):
    """An unregistered algorithm name was requested.

    Inherits both ``KeyError`` (registry-lookup convention, as in
    :class:`repro.core.backend.UnknownBackendError`) and ``ValueError``
    (the convention of the pre-registry baseline entry points), so
    either handling style works.
    """


_REGISTRY: Dict[str, AggregationAlgorithm] = {}
_ALIASES: Dict[str, str] = {}


def register_algorithm(
    name: str,
    algorithm: AggregationAlgorithm,
    *,
    aliases: Tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register ``algorithm`` under ``name`` (plus optional aliases).

    Examples
    --------
    >>> register_algorithm("demo", get_algorithm("eigentrust"), overwrite=True)
    >>> get_algorithm("demo") is get_algorithm("eigentrust")
    True
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"algorithm name must be a non-empty string, got {name!r}")
    if not overwrite:
        # Validate every name before mutating anything, so a conflict
        # never leaves a half-registered algorithm behind.
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"algorithm {name!r} is already registered (pass overwrite=True)")
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"algorithm alias {alias!r} is already registered")
    _REGISTRY[name] = algorithm
    for alias in aliases:
        _ALIASES[alias] = name


def resolve_algorithm_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases)."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    catalogue = ", ".join(sorted(_REGISTRY) + sorted(_ALIASES))
    raise UnknownAlgorithmError(
        f"unknown aggregation algorithm {name!r}; available: {catalogue}"
    )


def get_algorithm(name: str) -> AggregationAlgorithm:
    """Look up a registered algorithm by name or alias.

    Examples
    --------
    >>> get_algorithm("dgt") is get_algorithm("diff-gossip")  # aliases resolve
    True
    """
    return _REGISTRY[resolve_algorithm_name(name)]


def available_algorithms() -> Tuple[str, ...]:
    """Canonical names of all registered algorithms, sorted.

    Examples
    --------
    >>> {"diff-gossip", "push-sum", "flooding"} <= set(available_algorithms())
    True
    """
    return tuple(sorted(_REGISTRY))
