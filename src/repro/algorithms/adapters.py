"""Adapters wrapping every comparator as a registered algorithm.

Each adapter binds one aggregation scheme to the shared
:class:`~repro.algorithms.base.AggregationAlgorithm` protocol. Two
conventions hold across all of them:

- **Truth** is the algorithm's *own* exact aggregate (see
  :mod:`repro.algorithms.base`): observer means for differential
  gossip and flooding, all-nodes means for push-sum/push-pull, and the
  respective fixpoint for GossipTrust / EigenTrust / Absolute Trust
  (solved from the deterministic default start, so the seeded run's
  ``rms_error`` measures pure seed perturbation).
- **Message counting** is documented per adapter ("counting rule"
  paragraph in each docstring) — the unification of
  ``GossipOutcome.total_messages`` and ``FloodResult`` accounting the
  leaderboard relies on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.base import AlgorithmOutcome, PreparedAlgorithm, resolve_targets
from repro.algorithms.registry import register_algorithm
from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.facade import aggregate
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike


def _base_config(config: Optional[GossipConfig]) -> GossipConfig:
    return config if config is not None else GossipConfig(xi=1e-4)


def _with_rng(config: GossipConfig, rng: RngLike) -> GossipConfig:
    """The exact config a run executes: ``rng`` override or as-prepared."""
    return replace(config, rng=rng) if rng is not None else config


def _resolve_rng(config: Optional[GossipConfig], rng: RngLike) -> RngLike:
    """The seed a non-backend algorithm runs with (override > config)."""
    if rng is not None:
        return rng
    return config.rng if config is not None else None


def _observer_truth(trust: TrustMatrix, targets: Sequence[int]) -> np.ndarray:
    return np.array([trust.column_mean_over_observers(t) for t in targets])


def _all_nodes_truth(trust: TrustMatrix, targets: Sequence[int]) -> np.ndarray:
    return np.array([trust.column_mean_over_all(t) for t in targets])


def _dense_columns(trust: TrustMatrix, targets: Sequence[int]) -> np.ndarray:
    """Per-node opinion columns ``(N, T)`` (0.0 where never observed)."""
    dense = trust.to_dense()
    return dense[:, list(targets)]


def _gossip_outcome_to_algorithm(
    name: str,
    outcome: GossipOutcome,
    truth: np.ndarray,
) -> AlgorithmOutcome:
    node_estimates = outcome.estimates
    return AlgorithmOutcome(
        algorithm=name,
        estimates=node_estimates.mean(axis=0),
        truth=truth,
        num_nodes=outcome.num_nodes,
        rounds=outcome.steps,
        messages=outcome.total_messages,
        converged=bool(np.all(outcome.converged)),
        node_estimates=node_estimates,
        raw=outcome,
    )


class DiffGossipAlgorithm:
    """Differential gossip (the paper's contribution) through the facade.

    ``prepare(...).run(rng)`` calls exactly
    ``repro.aggregate(graph, trust, config, backend=..., variant="vector-global",
    targets=...)`` — nothing is re-derived, so the run inherits every
    backend / kernel / dtype / channel / network option of
    :class:`~repro.core.backend.GossipConfig` and is **byte-identical**
    to a direct facade call at the same seed (pinned by
    ``tests/test_algorithms.py``).

    Truth: per-target mean opinion over the target's *observers* (the
    vector-global variant's exact aggregate). Counting rule: ``messages
    = GossipOutcome.total_messages`` — gossip pushes plus protocol
    traffic (round-start degree announcements and per-node convergence
    announcements).
    """

    name = "diff-gossip"
    uses_backend = True

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        target_list = resolve_targets(trust, targets)
        base = _base_config(config)
        truth = _observer_truth(trust, target_list)

        def runner(rng: RngLike) -> AlgorithmOutcome:
            outcome = aggregate(
                graph,
                trust,
                _with_rng(base, rng),
                backend=backend,
                variant="vector-global",
                targets=target_list,
            )
            return _gossip_outcome_to_algorithm(self.name, outcome, truth)

        return PreparedAlgorithm(self.name, runner)


class PushSumAlgorithm:
    """Normal push gossip (push-sum, Kempe et al.) on the opinion columns.

    Every node starts with its own opinion column ``(T,)`` (0.0 for
    targets it never observed) and unit weight, then runs ``k = 1``
    push gossip through the unified backend layer — so the baseline
    sweeps backends exactly like differential gossip.

    Truth: per-target mean opinion over *all* ``N`` peers (eq. 1's
    ``R_global``; non-observers contribute 0 — that is what unit
    weights at every node average). Counting rule: ``messages =
    GossipOutcome.total_messages`` (pushes + protocol traffic), same
    rule as ``diff-gossip``.
    """

    name = "push-sum"
    uses_backend = True

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        target_list = resolve_targets(trust, targets)
        base = replace(_base_config(config), k=1, push_counts=None)
        columns = _dense_columns(trust, target_list)
        truth = _all_nodes_truth(trust, target_list)
        weights = np.ones_like(columns)

        def runner(rng: RngLike) -> AlgorithmOutcome:
            outcome = run_backend(
                graph,
                columns,
                weights,
                config=_with_rng(base, rng),
                backend=backend,
            )
            return _gossip_outcome_to_algorithm(self.name, outcome, truth)

        return PreparedAlgorithm(self.name, runner)


class PushPullAlgorithm:
    """Randomised pairwise averaging (push-pull) on the opinion columns.

    Runs :func:`repro.baselines.push_pull.push_pull_average` over the
    ``(N, T)`` opinion columns — one contact exchanges the whole state
    vector, the paper's stated reason pull is expensive.

    Truth: per-target mean opinion over all ``N`` peers (pairwise
    averaging conserves total mass over unit weights). Counting rule:
    2 messages per contact (request + response) regardless of ``T``,
    plus convergence-protocol announcements —
    ``GossipOutcome.total_messages`` of the baseline run.
    """

    name = "push-pull"
    uses_backend = False

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        from repro.baselines.push_pull import push_pull_average

        target_list = resolve_targets(trust, targets)
        base = _base_config(config)
        columns = _dense_columns(trust, target_list)
        truth = _all_nodes_truth(trust, target_list)

        def runner(rng: RngLike) -> AlgorithmOutcome:
            outcome = push_pull_average(
                graph,
                columns,
                xi=base.xi,
                rng=_resolve_rng(base, rng),
                max_steps=base.max_steps,
                patience=base.patience,
            )
            return _gossip_outcome_to_algorithm(self.name, outcome, truth)

        return PreparedAlgorithm(self.name, runner)


class GossipTrustAlgorithm:
    """GossipTrust's reputation-weighted global fixpoint (ref. [17]).

    Runs :func:`repro.baselines.gossip_trust.gossip_trust_fixpoint`
    from a seeded start; every peer ends with the *same* global vector.

    Truth: the same fixpoint solved from the deterministic uniform
    start, so ``rms_error`` measures seed perturbation only (the
    fixpoint is unique). Counting rule: each aggregation cycle
    re-disseminates every explicit trust report, so ``messages =
    cycles × num_observations`` — the cost GossipTrust's per-cycle
    gossip sums would pay.
    """

    name = "gossip-trust"
    uses_backend = False

    def __init__(self, *, max_cycles: int = 200, tolerance: float = 1e-10, damping: float = 0.5):
        self.max_cycles = max_cycles
        self.tolerance = tolerance
        self.damping = damping

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        from repro.baselines.gossip_trust import gossip_trust_fixpoint

        target_list = resolve_targets(trust, targets)
        kwargs = dict(
            max_cycles=self.max_cycles, tolerance=self.tolerance, damping=self.damping
        )
        reference = gossip_trust_fixpoint(trust, **kwargs)
        messages_per_cycle = trust.num_observations

        def runner(rng: RngLike) -> AlgorithmOutcome:
            result = gossip_trust_fixpoint(trust, rng=_resolve_rng(config, rng), **kwargs)
            return AlgorithmOutcome(
                algorithm=self.name,
                estimates=result.values[target_list],
                truth=reference.values[target_list],
                num_nodes=trust.num_nodes,
                rounds=result.cycles,
                messages=result.cycles * messages_per_cycle,
                converged=result.converged,
                raw=result,
            )

        return PreparedAlgorithm(self.name, runner)


class EigenTrustAlgorithm:
    """EigenTrust's damped principal eigenvector (Kamvar et al.).

    Runs :func:`repro.baselines.eigentrust.eigentrust_fixpoint` from a
    seeded start; the damped map is an L1 contraction, so the fixpoint
    is unique.

    Truth: the fixpoint solved from the deterministic pre-trusted
    start. Counting rule: each power iteration exchanges every explicit
    trust report once, so ``messages = iterations × num_observations``.
    """

    name = "eigentrust"
    uses_backend = False

    def __init__(
        self,
        *,
        pretrusted: Optional[Sequence[int]] = None,
        alpha: float = 0.1,
        max_iterations: int = 200,
        tolerance: float = 1e-12,
    ):
        self.pretrusted = list(pretrusted) if pretrusted is not None else None
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        from repro.baselines.eigentrust import eigentrust_fixpoint

        target_list = resolve_targets(trust, targets)
        kwargs = dict(
            pretrusted=self.pretrusted,
            alpha=self.alpha,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        reference = eigentrust_fixpoint(trust, **kwargs)
        messages_per_iteration = trust.num_observations

        def runner(rng: RngLike) -> AlgorithmOutcome:
            result = eigentrust_fixpoint(trust, rng=_resolve_rng(config, rng), **kwargs)
            return AlgorithmOutcome(
                algorithm=self.name,
                estimates=result.values[target_list],
                truth=reference.values[target_list],
                num_nodes=trust.num_nodes,
                rounds=result.iterations,
                messages=result.iterations * messages_per_iteration,
                converged=result.converged,
                raw=result,
            )

        return PreparedAlgorithm(self.name, runner)


class FloodingAlgorithm:
    """Deterministic flooding: full dissemination of every target's reports.

    For each tracked target, its observers flood their reports through
    the overlay (:func:`repro.baselines.flooding.flood_spread`); every
    informed peer then computes the exact observer mean. The strawman
    is deterministic — ``rng`` is accepted for protocol uniformity and
    ignored.

    Truth: per-target observer mean — identical to the estimate, so
    ``rms_error`` is 0 by construction; flooding's columns of interest
    are messages and rounds. Counting rule: every informed node
    forwards each item once to all neighbours, so ``messages =
    Σ_targets FloodResult.total_messages`` (``O(E)`` per item — the
    overhead gossip avoids); targets nobody observed cost nothing and
    estimate the newcomer default 0.0.
    """

    name = "flooding"
    uses_backend = False

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        from repro.baselines.flooding import flood_spread

        target_list = resolve_targets(trust, targets)

        def runner(rng: RngLike) -> AlgorithmOutcome:
            estimates = np.zeros(len(target_list), dtype=np.float64)
            messages = 0
            rounds = 0
            all_reached = True
            for index, target in enumerate(target_list):
                observers = trust.observers_of(target)
                if not observers:
                    continue  # newcomer default 0.0, nothing to flood
                flood = flood_spread(graph, sorted(observers))
                messages += flood.total_messages
                rounds = max(rounds, flood.steps)
                all_reached = all_reached and flood.reached == graph.num_nodes
                estimates[index] = trust.column_mean_over_observers(target)
            return AlgorithmOutcome(
                algorithm=self.name,
                estimates=estimates,
                truth=estimates.copy(),
                num_nodes=graph.num_nodes,
                rounds=rounds,
                messages=messages,
                converged=all_reached,
            )

        return PreparedAlgorithm(self.name, runner)


class AbsoluteTrustAlgorithm:
    """Absolute Trust's self-weighted fixpoint (arXiv:1601.01419).

    Runs :func:`repro.baselines.absolute_trust.absolute_trust_fixpoint`
    from a seeded positive start, with the arXiv:1603.00589 convergence
    guard (oscillation-triggered damping plus an iteration bound).

    Truth: the same fixpoint solved from the deterministic all-ones
    start (the fixpoint is unique on connected evaluation structures).
    Counting rule: each iteration re-exchanges every explicit trust
    report along with the evaluators' current trust values, so
    ``messages = iterations × num_observations``.
    """

    name = "absolute-trust"
    uses_backend = False

    def __init__(self, *, max_iterations: int = 500, tolerance: float = 1e-10):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def prepare(
        self,
        graph: Graph,
        trust: TrustMatrix,
        config: Optional[GossipConfig] = None,
        *,
        targets: Optional[Sequence[int]] = None,
        backend: str = "auto",
    ) -> PreparedAlgorithm:
        from repro.baselines.absolute_trust import absolute_trust_fixpoint

        target_list = resolve_targets(trust, targets)
        kwargs = dict(max_iterations=self.max_iterations, tolerance=self.tolerance)
        reference = absolute_trust_fixpoint(trust, **kwargs)
        messages_per_iteration = trust.num_observations

        def runner(rng: RngLike) -> AlgorithmOutcome:
            result = absolute_trust_fixpoint(trust, rng=_resolve_rng(config, rng), **kwargs)
            return AlgorithmOutcome(
                algorithm=self.name,
                estimates=result.values[target_list],
                truth=reference.values[target_list],
                num_nodes=trust.num_nodes,
                rounds=result.iterations,
                messages=result.iterations * messages_per_iteration,
                converged=result.converged,
                raw=result,
            )

        return PreparedAlgorithm(self.name, runner)


register_algorithm(
    "diff-gossip", DiffGossipAlgorithm(), aliases=("dgt", "differential-gossip")
)
register_algorithm("push-sum", PushSumAlgorithm(), aliases=("normal-push",))
register_algorithm("push-pull", PushPullAlgorithm())
register_algorithm("gossip-trust", GossipTrustAlgorithm(), aliases=("gossiptrust",))
register_algorithm("eigentrust", EigenTrustAlgorithm(), aliases=("eigen-trust",))
register_algorithm("flooding", FloodingAlgorithm(), aliases=("flood",))
register_algorithm(
    "absolute-trust", AbsoluteTrustAlgorithm(), aliases=("absolutetrust",)
)
