"""First-class comparison-algorithm registry.

Mirrors :mod:`repro.core.backend`: algorithms register under canonical
names (plus aliases), and every consumer — attack engine, scenario
layer, tournament leaderboard — resolves them through one lookup.

>>> from repro.algorithms import available_algorithms
>>> "diff-gossip" in available_algorithms()
True
"""

from repro.algorithms.base import (
    AggregationAlgorithm,
    AlgorithmOutcome,
    PreparedAlgorithm,
)
from repro.algorithms.registry import (
    UnknownAlgorithmError,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    resolve_algorithm_name,
)

# Importing the adapters registers the seven built-in algorithms.
from repro.algorithms import adapters as _adapters  # noqa: E402,F401

__all__ = [
    "AggregationAlgorithm",
    "AlgorithmOutcome",
    "PreparedAlgorithm",
    "UnknownAlgorithmError",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "resolve_algorithm_name",
]
