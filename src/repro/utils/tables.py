"""Plain-text table rendering for experiment output.

The experiment harness prints the same rows the paper's tables report;
this module owns the formatting so every experiment renders uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(cell: Cell, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_fmt: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)``
        cells. Floats are formatted with ``float_fmt``.
    float_fmt:
        ``format()`` spec applied to float cells (default 4 decimals, the
        precision the paper's tables use).
    title:
        Optional title line rendered above the table.

    Returns
    -------
    str
        The rendered table, newline-separated, without a trailing newline.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_render_cell(c, float_fmt) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} headers: {cells!r}"
            )
        rendered.append(cells)

    widths = [max(len(r[col]) for r in rendered) for col in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for idx, cells in enumerate(rendered):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(cells, widths)))
        if idx == 0:
            lines.append(separator)
    return "\n".join(lines)
