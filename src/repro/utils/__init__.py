"""Shared utilities: seeded randomness, validation, ASCII tables.

These helpers are deliberately small and dependency-free (numpy only) so
that every other subpackage can rely on them without import cycles.
"""

from repro.utils.rng import RngLike, as_generator, spawn_child
from repro.utils.stats import SampleSummary, summarize
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_trust_value,
)

__all__ = [
    "RngLike",
    "as_generator",
    "spawn_child",
    "format_table",
    "SampleSummary",
    "summarize",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_trust_value",
]
