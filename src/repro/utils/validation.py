"""Input validation helpers.

The library is the substrate for simulation experiments; a silently
out-of-range trust value or probability would corrupt whole sweeps, so
boundary checks fail fast with precise messages.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def check_positive(value: Number, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")


def check_probability(value: Number, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_fraction(value: Number, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the half-open interval [0, 1).

    Used for population fractions (e.g. fraction of colluding peers) where
    1.0 would leave no honest peer and the experiment is degenerate.
    """
    if not math.isfinite(value) or not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must lie in [0, 1), got {value!r}")


def check_trust_value(value: Number, name: str = "trust value") -> None:
    """Raise ``ValueError`` unless ``value`` is a valid trust value in [0, 1].

    The paper (Section 4) requires every trust value ``t_ij`` to lie
    between 0 (no trust) and 1 (complete trust).
    """
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
