"""Host-capability probes shared by backend selection and executors.

Scheduling policy (which backend, how many workers) must be driven by
the CPUs a process can *actually use* — a container pinned to one core
of a 64-core host should behave like a 1-core machine. Python grew
``os.process_cpu_count`` for exactly this in 3.13; this module provides
the same semantics across the versions the repo supports.
"""

from __future__ import annotations

import os


def usable_cpu_count() -> int:
    """CPUs usable by this process (affinity/cgroup-aware), at least 1.

    Resolution order:

    1. ``os.process_cpu_count()`` (Python 3.13+) — affinity-aware by
       definition;
    2. ``len(os.sched_getaffinity(0))`` — the affinity mask on Linux;
    3. ``os.cpu_count()`` — raw host count, the last resort.

    Examples
    --------
    >>> usable_cpu_count() >= 1
    True
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        count = probe()
        if count:
            return max(1, int(count))
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def host_metadata(*, required_workers: int = 2) -> dict:
    """The host stamp every benchmark artifact carries.

    Timing numbers are meaningless without knowing what they ran on:
    ``host_cpus`` is the affinity-aware usable count, and
    ``parallelism_expressible`` records whether the host could actually
    run ``required_workers`` concurrently — on a single-core CI runner a
    multi-worker comparison measures orchestration overhead, not
    speedup, and downstream readers must be able to tell.

    Examples
    --------
    >>> meta = host_metadata()
    >>> meta["host_cpus"] >= 1 and isinstance(meta["parallelism_expressible"], bool)
    True
    """
    cpus = usable_cpu_count()
    return {
        "host_cpus": cpus,
        "parallelism_expressible": cpus >= max(1, int(required_workers)),
    }
