"""Summary statistics for repeated stochastic measurements.

Gossip step counts, RMS errors and message rates are random variables;
single-seed numbers are anecdotes. The sweep utilities
(:mod:`repro.analysis.sweeps`) repeat each configuration across seeds
and report through :class:`SampleSummary` — mean, spread and a normal
confidence half-width — so that experiment tables can carry error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SampleSummary:
    """Mean / spread summary of one measured quantity.

    Attributes
    ----------
    count:
        Number of samples.
    mean:
        Sample mean.
    std:
        Sample standard deviation (ddof=1; 0.0 for a single sample).
    minimum, maximum:
        Sample range.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation half-width of the mean's CI.

        ``z = 1.96`` gives the conventional 95% interval; with tiny
        sample counts this is an optimistic approximation, which is fine
        for the error bars these tables carry.
        """
        if self.count <= 1:
            return 0.0
        return z * self.std / math.sqrt(self.count)

    def format(self, precision: int = 3) -> str:
        """Human-readable ``mean ± halfwidth`` rendering."""
        return f"{self.mean:.{precision}f} ± {self.confidence_halfwidth():.{precision}f}"


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Summarise a non-empty sequence of measurements.

    Examples
    --------
    >>> s = summarize([1.0, 2.0, 3.0])
    >>> s.mean
    2.0
    >>> s.minimum, s.maximum
    (1.0, 3.0)
    """
    values = [float(v) for v in samples]
    if not values:
        raise ValueError("cannot summarise an empty sample")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return SampleSummary(
        count=count,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
    )
