"""Seeded randomness helpers.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy) or an existing :class:`numpy.random.Generator`.
Funnelling all call sites through :func:`as_generator` keeps experiments
reproducible: one seed at the experiment boundary determines the whole
run, and child streams can be split off deterministically with
:func:`spawn_child` so that, e.g., topology generation and gossip target
selection do not share (and therefore perturb) one stream.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so state is shared with
        the caller).

    Examples
    --------
    >>> g = as_generator(42)
    >>> g2 = as_generator(42)
    >>> float(g.random()) == float(g2.random())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_child(rng: np.random.Generator, key: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is seeded from the parent's bit generator, so two
    subsystems given different children never contend for the same stream
    while remaining fully determined by the original seed.

    Parameters
    ----------
    rng:
        Parent generator.
    key:
        Optional integer mixed into the child's seed, letting callers
        derive several distinguishable children from one parent.
    """
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    if key is not None:
        seed = np.int64(seed ^ np.int64(key * 0x9E3779B97F4A7C15 % (2**62)))
    return np.random.default_rng(int(seed))


def stateless_child_sequence(
    root: np.random.SeedSequence, key: int
) -> np.random.SeedSequence:
    """Child ``SeedSequence`` derived from ``(root entropy, key)`` only.

    Built exactly as ``root.spawn()`` would build child ``key`` for a
    fresh root (spawn_key extended, pool_size inherited) but without
    mutating the root's spawn counter, so the child depends on nothing
    but the root entropy and the key. Note the children of
    :func:`spawn_seed_sequences` occupy keys ``0..count-1`` of the same
    keyspace — subsystem streams derived with this helper should use
    large keys (``> 2**32 - 2**16``, say) that no sweep will reach.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (int(key),),
        pool_size=root.pool_size,
    )


def spawn_seed_sequences(master_seed: RngLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child :class:`~numpy.random.SeedSequence` streams.

    This is the parallel-sweep seeding primitive: child ``i`` depends only
    on the master seed and its index, never on which worker process runs
    it or in what order — so a sweep's results are byte-identical whether
    executed serially or fanned out over a process pool.

    Parameters
    ----------
    master_seed:
        Root entropy: ``None``, an ``int``, or an existing
        ``SeedSequence`` (a ``Generator`` is not accepted — generators
        carry hidden stream state that would break run-to-run identity).
    count:
        Number of child sequences; must be >= 0.

    Examples
    --------
    >>> a = spawn_seed_sequences(7, 3)
    >>> b = spawn_seed_sequences(7, 3)
    >>> [x.generate_state(1)[0] for x in a] == [y.generate_state(1)[0] for y in b]
    True

    Calling twice with the *same* ``SeedSequence`` object also yields
    identical children — the root is never mutated (``.spawn()`` would
    advance its spawn counter). The flip side: children occupy the same
    spawn keyspace as ``root.spawn()``, so child ``i`` here is
    bit-identical to the ``i``-th stream a *fresh* root would spawn. Do
    not seed other subsystems from ``root.spawn()`` of the same root —
    give each subsystem its own master seed (or a dedicated child) so
    sweep streams never alias streams consumed elsewhere:

    >>> import numpy as np
    >>> root = np.random.SeedSequence(7)
    >>> first = spawn_seed_sequences(root, 2)
    >>> second = spawn_seed_sequences(root, 2)
    >>> [x.generate_state(1)[0] for x in first] == [y.generate_state(1)[0] for y in second]
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(master_seed, np.random.Generator):
        raise TypeError("master_seed must be an int, None or SeedSequence, not a Generator")
    if isinstance(master_seed, np.random.SeedSequence):
        root = master_seed
    else:
        root = np.random.SeedSequence(master_seed)
    # Stateless children: the root's spawn counter is left untouched,
    # so child i depends only on (root entropy, i) — never on how often
    # the root was used before.
    return [stateless_child_sequence(root, i) for i in range(count)]
