"""Seeded randomness helpers.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy) or an existing :class:`numpy.random.Generator`.
Funnelling all call sites through :func:`as_generator` keeps experiments
reproducible: one seed at the experiment boundary determines the whole
run, and child streams can be split off deterministically with
:func:`spawn_child` so that, e.g., topology generation and gossip target
selection do not share (and therefore perturb) one stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so state is shared with
        the caller).

    Examples
    --------
    >>> g = as_generator(42)
    >>> g2 = as_generator(42)
    >>> float(g.random()) == float(g2.random())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_child(rng: np.random.Generator, key: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is seeded from the parent's bit generator, so two
    subsystems given different children never contend for the same stream
    while remaining fully determined by the original seed.

    Parameters
    ----------
    rng:
        Parent generator.
    key:
        Optional integer mixed into the child's seed, letting callers
        derive several distinguishable children from one parent.
    """
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    if key is not None:
        seed = np.int64(seed ^ np.int64(key * 0x9E3779B97F4A7C15 % (2**62)))
    return np.random.default_rng(int(seed))
