"""Empirical measurement of the appendix's potential function.

The proof of Theorem 5.2 tracks, per node ``j``, a *contribution vector*
``c_{n,·,j}``: how much of each origin node's initial unit has reached
``j`` by step ``n``. The potential

``psi_n = sum_{j,i} (c_{n,i,j} - g_{n,j} / N)^2``   (eq. 19)

measures how far contributions are from uniform; gossip has converged
when every node holds an equal slice of every origin's unit.

:func:`measure_potential_trajectory` runs differential gossip while
tracking the full ``(N, N)`` contribution matrix (column ``j`` is node
``j``'s contribution vector) and reports ``psi_n`` per step — the
empirical counterpart to
:func:`repro.analysis.theory.potential_bound_sequence`. Memory is
``O(N^2)``; it is a verification instrument for moderate ``N``, not a
production path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.differential import push_counts as differential_push_counts
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class PotentialTrajectory:
    """Measured potential per step plus the mass-conservation audit.

    Attributes
    ----------
    psi:
        ``psi_n`` for n = 0..steps.
    contribution_sums:
        Per-origin total contribution at the final step (Proposition
        A.1 says each must equal 1).
    weight_sum:
        Total gossip weight at the final step (must equal ``N``).
    """

    psi: List[float]
    contribution_sums: np.ndarray
    weight_sum: float


def _potential(contribution: np.ndarray, weights: np.ndarray) -> float:
    """Eq. 19 for a contribution matrix ``contribution[i, j]`` and weights ``g_j``."""
    n = contribution.shape[0]
    deviation = contribution - weights[None, :] / n
    return float((deviation**2).sum())


def measure_potential_trajectory(
    graph: Graph,
    steps: int,
    *,
    push_counts: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> PotentialTrajectory:
    """Run differential gossip tracking the full contribution matrix.

    Every node starts with one unit of its own contribution and gossip
    weight 1 (the uniform-gossip setting of the appendix). Each step
    applies the identical split/push rule to all ``N`` columns.

    Parameters
    ----------
    graph:
        Topology.
    steps:
        Number of gossip steps to execute (no stopping protocol — the
        instrument observes free-running decay).
    push_counts:
        Override ``k_i`` (e.g. ``fixed_push_counts(graph, 1)`` to measure
        the plain-push potential the paper uses as its worst case).
    rng:
        Seed / generator.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    generator = as_generator(rng)
    n = graph.num_nodes
    counts = (
        np.asarray(push_counts, dtype=np.int64)
        if push_counts is not None
        else differential_push_counts(graph)
    )
    if counts.shape != (n,):
        raise ValueError(f"push_counts must have shape ({n},), got {counts.shape}")

    # contribution[i, j]: share of origin i's unit currently held by j.
    contribution = np.eye(n, dtype=np.float64)
    weights = np.ones(n, dtype=np.float64)
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees

    psi = [_potential(contribution, weights)]
    divisors = (counts + 1).astype(np.float64)

    for _ in range(steps):
        new_contribution = contribution / divisors[None, :]
        new_weights = weights / divisors
        for node in range(n):
            if degrees[node] == 0:
                # Isolated: keeps everything (no division applied).
                new_contribution[:, node] = contribution[:, node]
                new_weights[node] = weights[node]
                continue
            neighbors = indices[indptr[node] : indptr[node + 1]]
            k = int(counts[node])
            if k >= neighbors.size:
                chosen = neighbors
            else:
                chosen = generator.choice(neighbors, size=k, replace=False)
            share_col = contribution[:, node] / divisors[node]
            share_w = weights[node] / divisors[node]
            for target in np.atleast_1d(chosen):
                new_contribution[:, int(target)] += share_col
                new_weights[int(target)] += share_w
        contribution = new_contribution
        weights = new_weights
        psi.append(_potential(contribution, weights))

    return PotentialTrajectory(
        psi=psi,
        contribution_sums=contribution.sum(axis=1),
        weight_sum=float(weights.sum()),
    )
