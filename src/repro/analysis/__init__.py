"""Analysis: convergence theory, collusion algebra, and metrics.

Mirrors Section 5 of the paper:

- :mod:`repro.analysis.theory` — Theorem 5.1/5.2 bounds and the
  potential-function recurrence (eqs. 19–32);
- :mod:`repro.analysis.potential` — empirical contribution-vector
  tracking that measures the potential ``psi_n`` on real runs;
- :mod:`repro.analysis.collusion_theory` — the collusion error closed
  forms (eqs. 8–17);
- :mod:`repro.analysis.metrics` — the average RMS error of eq. 18 and
  message-overhead accounting.
"""

from repro.analysis.collusion_theory import (
    damping_ratio,
    expected_error_unweighted,
    expected_error_weighted,
)
from repro.analysis.metrics import (
    average_rms_error,
    max_relative_error,
    mean_relative_error,
)
from repro.analysis.potential import measure_potential_trajectory
from repro.analysis.sweeps import SweepCell, grid_sweep, replicate
from repro.analysis.theory import (
    convergence_steps_bound,
    potential_bound_sequence,
    potential_recurrence_bound,
    spread_steps_bound,
)

__all__ = [
    "convergence_steps_bound",
    "spread_steps_bound",
    "potential_recurrence_bound",
    "potential_bound_sequence",
    "measure_potential_trajectory",
    "expected_error_unweighted",
    "expected_error_weighted",
    "damping_ratio",
    "average_rms_error",
    "replicate",
    "grid_sweep",
    "SweepCell",
    "max_relative_error",
    "mean_relative_error",
]
