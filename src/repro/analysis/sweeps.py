"""Seed-replicated parameter sweeps.

The paper's figures plot single simulation runs; for a reproduction it
is worth knowing how much of any gap is seed noise. These helpers rerun
a measurement across independent seeds and summarise with
:class:`repro.utils.stats.SampleSummary`, so any experiment can be
upgraded from point estimates to error bars without bespoke loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.utils.rng import as_generator
from repro.utils.stats import SampleSummary, summarize

#: A measurement: seed -> {metric name: value}.
Measurement = Callable[[int], Mapping[str, float]]


@dataclass(frozen=True)
class SweepCell:
    """One configuration's replicated measurements.

    Attributes
    ----------
    config:
        The swept parameter values of this cell.
    metrics:
        Per-metric summaries across the replications.
    """

    config: Tuple
    metrics: Dict[str, SampleSummary]


def replicate(measure: Measurement, *, repetitions: int, seed: int = 0) -> Dict[str, SampleSummary]:
    """Run ``measure`` across ``repetitions`` derived seeds and summarise.

    Parameters
    ----------
    measure:
        Callable taking a seed and returning named metrics.
    repetitions:
        Number of independent replications (>= 1).
    seed:
        Master seed; replication seeds derive deterministically from it.

    Examples
    --------
    >>> out = replicate(lambda s: {"x": float(s % 3)}, repetitions=3, seed=1)
    >>> out["x"].count
    3
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    root = as_generator(seed)
    collected: Dict[str, list] = {}
    for _ in range(repetitions):
        run_seed = int(root.integers(2**62))
        for name, value in measure(run_seed).items():
            collected.setdefault(name, []).append(float(value))
    return {name: summarize(values) for name, values in collected.items()}


def grid_sweep(
    configs: Sequence[Tuple],
    measure_factory: Callable[..., Measurement],
    *,
    repetitions: int = 5,
    seed: int = 0,
) -> list:
    """Replicated sweep over a configuration grid.

    Parameters
    ----------
    configs:
        Tuples of parameter values; each is splatted into
        ``measure_factory`` to build that cell's measurement.
    measure_factory:
        ``measure_factory(*config)`` returns a seed-taking measurement.
    repetitions, seed:
        Replication controls (each cell gets its own derived seed
        stream, so adding cells never perturbs existing ones).

    Returns
    -------
    list of SweepCell
        In the order of ``configs``.
    """
    if not configs:
        raise ValueError("configs must be non-empty")
    root = as_generator(seed)
    cells = []
    for config in configs:
        cell_seed = int(root.integers(2**62))
        measure = measure_factory(*config)
        cells.append(
            SweepCell(
                config=tuple(config),
                metrics=replicate(measure, repetitions=repetitions, seed=cell_seed),
            )
        )
    return cells
