"""Theoretical bounds of Section 5.1 and the appendix.

Three results matter for the experiments:

- **Theorem 5.1** — differential push spreads a rumour through a PA
  graph ``G^m_N`` (m >= 2) in ``O((log2 N)^2)`` steps w.h.p.
- **Theorem 5.2** — uniform gossip with differential push is
  ``xi``-uniform within ``O((log2 N)^2 + log2(1/xi))`` steps.
- **Potential recurrence** (eq. 27) — for p-push,
  ``E[psi_{n+1} | psi_n] <= psi_n / (p+1) + 1 / (4 (p+1)^2)``,
  with ``psi_0 = N - 1`` (eq. 28), giving the closed-form decay
  ``E[psi_n] <= (N-1) (p+1)^{-n} + 1/(4 p (p+1))`` used to prove
  Theorem 5.2.

These functions return the bound *values* (with unit constants, as the
paper's O(·) hides them); experiment E7 checks measured potentials
against :func:`potential_bound_sequence` and Figure-3 analyses compare
measured step counts against :func:`convergence_steps_bound` shapes.
"""

from __future__ import annotations

import math
from typing import List

from repro.utils.validation import check_positive


def spread_steps_bound(num_nodes: int) -> float:
    """Theorem 5.1's spreading-time scale ``(log2 N)^2``."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return 0.0
    return math.log2(num_nodes) ** 2


def convergence_steps_bound(num_nodes: int, xi: float) -> float:
    """Theorem 5.2's convergence-time scale ``(log2 N)^2 + log2(1/xi)``.

    Parameters
    ----------
    num_nodes:
        Network size ``N``.
    xi:
        Gossip error tolerance.

    Examples
    --------
    >>> convergence_steps_bound(1024, 1e-3) > convergence_steps_bound(1024, 1e-2)
    True
    """
    check_positive(xi, "xi")
    return spread_steps_bound(num_nodes) + math.log2(1.0 / xi)


def psi_initial(num_nodes: int) -> float:
    """Initial potential ``psi_0 = N - 1`` (eq. 28)."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    return float(num_nodes - 1)


def potential_recurrence_bound(psi_n: float, p: int = 1) -> float:
    """One-step potential bound (eq. 27): ``psi/(p+1) + 1/(4 (p+1)^2)``.

    Parameters
    ----------
    psi_n:
        Current potential value.
    p:
        Pushes per node per step (p-push analysis; the differential
        algorithm's worst case is ``p = 1``).
    """
    if psi_n < 0:
        raise ValueError(f"potential must be >= 0, got {psi_n}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return psi_n / (p + 1) + 1.0 / (4.0 * (p + 1) ** 2)


def potential_closed_form(num_nodes: int, steps: int, p: int = 1) -> float:
    """Closed-form n-step bound: ``(N-1)(p+1)^-n + 1/(4 p (p+1))``.

    This is the paper's telescoped recurrence (the line before eq. 31);
    for ``p = 1`` it simplifies to ``(N-1) 2^-n + 1/8``.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return psi_initial(num_nodes) * (p + 1.0) ** (-steps) + 1.0 / (4.0 * p * (p + 1))


def potential_bound_sequence(num_nodes: int, steps: int, p: int = 1) -> List[float]:
    """Expected-potential bounds for steps ``0..steps`` via the recurrence.

    Iterating eq. 27 from ``psi_0 = N - 1`` gives a slightly tighter
    trajectory than the closed form; experiment E7 plots measured
    potentials under this sequence.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    bounds = [psi_initial(num_nodes)]
    for _ in range(steps):
        bounds.append(potential_recurrence_bound(bounds[-1], p=p))
    return bounds


def steps_to_reach_xi(num_nodes: int, xi: float, kd: float = 8.0, p: int = 1) -> int:
    """Steps after which the bounded expected potential drops below ``xi``.

    Follows eq. 31–32: ``n = log2(N-1) + log2(kd) + log2(1/xi)`` for
    ``p = 1`` (the paper absorbs the floor term ``1/8`` into the
    constant ``kd``). Returned as an integer step count.
    """
    check_positive(xi, "xi")
    if kd <= 1:
        raise ValueError(f"kd must be > 1, got {kd}")
    if num_nodes < 2:
        return 0
    base = p + 1
    n = (
        math.log(num_nodes - 1, base)
        + math.log(kd, base)
        + math.log(1.0 / xi, base)
    )
    return max(0, math.ceil(n))
