"""Closed-form collusion error analysis (Section 5.2, eqs. 8–17).

Setting: ``N`` peers, ``C`` of them colluding in groups of size ``G``.
A colluder reports 1 for group-mates and 0 for everyone else. The
*expected* error the collusion injects into node ``o``'s estimate of a
random node ``j`` is:

- unweighted (global-average, GossipTrust-style) aggregation (eq. 12):

  ``dR_old = -G C / N^2 + (sum_{i in C} t_ij) / N``

- GCLR-weighted aggregation (eq. 17):

  ``dR_new = N / (N + sum_i (w_oi - 1)) * dR_old``

i.e. the weighting attenuates collusion by a factor strictly less than
1 whenever node ``o`` extends any excess trust. These functions compute
both forms so experiments E5/E6/E8 can overlay theory on measurement.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


def _check_population(num_nodes: int, num_colluders: int, group_size: int) -> None:
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if not 0 <= num_colluders <= num_nodes:
        raise ValueError(
            f"num_colluders must lie in 0..{num_nodes}, got {num_colluders}"
        )
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")


def expected_error_unweighted(
    num_nodes: int,
    num_colluders: int,
    group_size: int,
    colluder_trust_sum: float,
) -> float:
    """Eq. 12: expected collusion error of plain global averaging.

    Parameters
    ----------
    num_nodes:
        ``N``.
    num_colluders:
        ``C`` (cardinality of the colluding set).
    group_size:
        ``G``.
    colluder_trust_sum:
        ``sum_{i in C} t_ij`` — the honest trust the colluders *withheld*
        by reporting 0 (their genuine direct observations of ``j``).

    Returns
    -------
    float
        ``dR_old`` — negative when the inflation term dominates (the
        colluders' mutual praise raised group members' estimates more
        than their badmouthing lowered ``j``'s).
    """
    _check_population(num_nodes, num_colluders, group_size)
    inflation = group_size * num_colluders / num_nodes**2
    withheld = colluder_trust_sum / num_nodes
    return -inflation + withheld


def damping_ratio(num_nodes: int, total_excess_weight: float) -> float:
    """Eq. 17's attenuation factor ``N / (N + sum (w_oi - 1))``."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if total_excess_weight < 0:
        raise ValueError(
            f"total_excess_weight must be >= 0, got {total_excess_weight}"
        )
    return num_nodes / (num_nodes + total_excess_weight)


def expected_error_weighted(
    num_nodes: int,
    num_colluders: int,
    group_size: int,
    colluder_trust_sum: float,
    total_excess_weight: float,
) -> float:
    """Eq. 17: expected collusion error of GCLR-weighted aggregation.

    ``dR_new = damping_ratio * dR_old``; approaches ``dR_old`` when the
    estimating node trusts nobody (zero excess weight) and 0 as its
    trusted neighbourhood grows.
    """
    base = expected_error_unweighted(
        num_nodes, num_colluders, group_size, colluder_trust_sum
    )
    return damping_ratio(num_nodes, total_excess_weight) * base


def worst_case_inflation(num_nodes: int, num_colluders: int, group_size: int) -> float:
    """Magnitude of the pure-inflation term ``G C / N^2``.

    Useful as the experiment axis when colluders had no honest opinions
    to withhold (``colluder_trust_sum = 0``): the entire expected error
    is the mutual-praise inflation.
    """
    _check_population(num_nodes, num_colluders, group_size)
    return group_size * num_colluders / num_nodes**2


def breakeven_excess_weight(num_nodes: int, reduction: float) -> float:
    """Excess weight needed to attenuate collusion error by ``reduction``.

    Solves ``damping_ratio = 1 - reduction`` for the total excess weight:
    e.g. ``reduction = 0.5`` returns the excess weight at which GCLR
    halves the collusion error. Useful for sizing ``a``/``b``.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    check_positive(reduction, "reduction")
    if reduction >= 1.0:
        raise ValueError(f"reduction must be < 1, got {reduction}")
    target_ratio = 1.0 - reduction
    return num_nodes * (1.0 - target_ratio) / target_ratio
