"""Error and overhead metrics used across the experiments.

The headline metric is the paper's eq. 18 average RMS error:

``(1/N) sum_i sqrt( (1/N) sum_j ((r_ij - rhat_ij) / r_ij)^2 )``

where ``r`` is the reputation matrix computed *with* colluders present
and ``rhat`` the matrix from the identical run *without* them. Cells
with ``r_ij = 0`` are excluded from the inner mean (the relative error
is undefined there); the paper does not say how it handles them, and
excluding is the conservative choice — it never manufactures error.
"""

from __future__ import annotations

import numpy as np


def average_rms_error(observed: np.ndarray, reference: np.ndarray) -> float:
    """Eq. 18's average RMS relative error between two reputation matrices.

    Parameters
    ----------
    observed:
        ``r_ij`` — reputations under attack (or any perturbed run).
    reference:
        ``rhat_ij`` — clean-run reputations, same shape.

    Returns
    -------
    float
        Average over rows ``i`` of the RMS of per-cell relative errors.
        Cells where ``observed == 0`` are skipped; a row with no valid
        cell contributes 0.

    Examples
    --------
    >>> import numpy as np
    >>> r = np.array([[0.5, 0.5], [0.5, 0.5]])
    >>> average_rms_error(r, r)
    0.0
    >>> float(round(average_rms_error(r, r * 1.1), 6))
    0.1
    """
    observed = np.asarray(observed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if observed.shape != reference.shape:
        raise ValueError(f"shape mismatch: {observed.shape} vs {reference.shape}")
    if observed.ndim != 2:
        raise ValueError(f"expected 2-D reputation matrices, got shape {observed.shape}")
    valid = observed != 0.0
    relative_sq = np.zeros_like(observed)
    np.divide(
        observed - reference,
        observed,
        out=relative_sq,
        where=valid,
    )
    relative_sq = relative_sq**2
    counts = valid.sum(axis=1)
    row_means = np.zeros(observed.shape[0])
    np.divide(relative_sq.sum(axis=1), counts, out=row_means, where=counts > 0)
    return float(np.sqrt(row_means).mean())


def attack_amplification(
    rms_unweighted: float, rms_gclr: float, *, floor: float = 1e-12
) -> float:
    """Eq.-17 damping as a ratio: unweighted error over DGT error.

    ``> 1`` means the GCLR weighting absorbed that factor of the attack
    relative to the plain global average (eqs. 8–12). Both errors are
    floored at ``floor`` so a fully damped attack reports a finite
    ratio; two clean measurements report exactly 1.

    Parameters
    ----------
    rms_unweighted, rms_gclr:
        The two eq.-18 errors of one
        :class:`repro.attacks.evaluate.AttackImpact`.
    floor:
        Numerical floor applied to both errors.
    """
    if rms_unweighted < 0 or rms_gclr < 0:
        raise ValueError("rms errors must be non-negative")
    return float(max(rms_unweighted, floor) / max(rms_gclr, floor))


def max_relative_error(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Worst relative error of ``estimates`` against element-wise ``truth``.

    Cells with zero truth compare absolutely (relative error undefined).
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise ValueError(f"shape mismatch: {estimates.shape} vs {truth.shape}")
    scale = np.where(np.abs(truth) > 0, np.abs(truth), 1.0)
    return float((np.abs(estimates - truth) / scale).max())


def mean_relative_error(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Mean relative error of ``estimates`` against element-wise ``truth``."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise ValueError(f"shape mismatch: {estimates.shape} vs {truth.shape}")
    scale = np.where(np.abs(truth) > 0, np.abs(truth), 1.0)
    return float((np.abs(estimates - truth) / scale).mean())
