"""Dynamic-network reputation runtime: churn traces, epochs, warm starts.

Where :func:`repro.aggregate` runs one gossip round on a frozen
topology, this package runs reputation aggregation on a network that
actually evolves — peers join via preferential attachment, leave with
their gossip mass handed onward, and each epoch's round warm-starts
from the last converged state with Algorithm 2's Δ re-push seeding the
deltas. See :mod:`repro.runtime.dynamics` for the mechanism.

>>> from repro.runtime import ChurnTrace, run_dynamic
>>> from repro.network.mutable import MutableOverlay
>>> overlay = MutableOverlay.grow_preferential(80, m=2, rng=0)
>>> trace = ChurnTrace.steady(3, population=80, join_rate=0.03, leave_rate=0.03, seed=1)
>>> result = run_dynamic(overlay, trace)
>>> len(result.records)
3
"""

from repro.runtime.dynamics import (
    DynamicReputationRuntime,
    DynamicRunResult,
    EpochRecord,
    run_dynamic,
)
from repro.runtime.trace import ChurnTrace, EpochChurn

__all__ = [
    "ChurnTrace",
    "EpochChurn",
    "DynamicReputationRuntime",
    "DynamicRunResult",
    "EpochRecord",
    "run_dynamic",
]
