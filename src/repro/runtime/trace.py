"""Seeded, replayable churn traces.

A :class:`ChurnTrace` is the *schedule* of a dynamic-network run: how
many peer sessions arrive and depart in each epoch. Traces are plain
data generated once from seeded rates — Poisson session arrivals and
departures, the standard model for P2P session churn — so a dynamic run
is reproducible from ``(trace, runtime arguments)`` alone and a trace
can be replayed against different backends, warm-start policies or
newcomer policies for apples-to-apples comparisons.

Two generators ship:

- :meth:`ChurnTrace.steady` — stationary per-capita join/leave rates
  (the long-lived network of the paper's Section 5.3 churn study);
- :meth:`ChurnTrace.flash_crowd` — a stationary baseline with one
  arrival spike followed by geometric decay of the extra arrivals
  (a popular file appearing, then interest fading).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.utils.rng import as_generator


@dataclass(frozen=True)
class EpochChurn:
    """Session churn of one epoch: ``arrivals`` joins, ``departures`` leaves."""

    arrivals: int
    departures: int

    def __post_init__(self) -> None:
        if self.arrivals < 0 or self.departures < 0:
            raise ValueError(
                f"arrivals/departures must be >= 0, got {self.arrivals}/{self.departures}"
            )


@dataclass(frozen=True)
class ChurnTrace:
    """A replayable per-epoch schedule of session arrivals and departures.

    Attributes
    ----------
    epochs:
        One :class:`EpochChurn` per epoch, in order.
    seed:
        Seed the runtime derives its replay streams from (victim
        selection, attachment wiring, newcomer opinions), so the same
        trace replays identically.

    Examples
    --------
    >>> trace = ChurnTrace.steady(4, population=200, join_rate=0.02, leave_rate=0.02, seed=5)
    >>> trace == ChurnTrace.steady(4, population=200, join_rate=0.02, leave_rate=0.02, seed=5)
    True
    >>> len(trace)
    4
    """

    epochs: Tuple[EpochChurn, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "epochs", tuple(self.epochs))
        if not self.epochs:
            raise ValueError("a churn trace needs at least one epoch")

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[EpochChurn]:
        return iter(self.epochs)

    @property
    def total_arrivals(self) -> int:
        """Joins summed over all epochs."""
        return sum(e.arrivals for e in self.epochs)

    @property
    def total_departures(self) -> int:
        """Leaves summed over all epochs."""
        return sum(e.departures for e in self.epochs)

    # -- generators ----------------------------------------------------------

    @classmethod
    def steady(
        cls,
        num_epochs: int,
        *,
        population: int,
        join_rate: float,
        leave_rate: float,
        seed: int = 0,
        min_population: int = 8,
    ) -> "ChurnTrace":
        """Stationary churn: per-epoch Poisson(rate × current population).

        Parameters
        ----------
        num_epochs:
            Number of epochs to schedule.
        population:
            Initial peer count the rates apply to (tracked as the
            schedule adds/removes sessions).
        join_rate, leave_rate:
            Per-capita per-epoch session rates (e.g. ``0.01`` = 1% of
            the population joins/leaves each epoch).
        seed:
            Drives both the Poisson draws and the runtime replay.
        min_population:
            Departures are clamped so the scheduled population never
            falls below this.
        """
        _check_rates(num_epochs, population, join_rate, leave_rate)
        rng = as_generator(seed)
        epochs: List[EpochChurn] = []
        pop = population
        for _ in range(num_epochs):
            arrivals = int(rng.poisson(join_rate * pop))
            departures = int(rng.poisson(leave_rate * pop))
            departures = min(departures, max(0, pop + arrivals - min_population))
            epochs.append(EpochChurn(arrivals, departures))
            pop += arrivals - departures
        return cls(tuple(epochs), seed)

    @classmethod
    def flash_crowd(
        cls,
        num_epochs: int,
        *,
        population: int,
        base_rate: float = 0.005,
        spike_epoch: int = 1,
        spike_fraction: float = 0.3,
        decay: float = 0.5,
        seed: int = 0,
        min_population: int = 8,
    ) -> "ChurnTrace":
        """A flash crowd: baseline churn plus one decaying arrival surge.

        At ``spike_epoch`` an extra ``spike_fraction`` of the current
        population arrives; each following epoch the surge decays by
        ``decay`` and the earlier surge sessions start departing at the
        same geometric schedule (flash-crowd visitors are short-lived).
        """
        _check_rates(num_epochs, population, base_rate, base_rate)
        if not 0 <= spike_epoch < num_epochs:
            raise ValueError(f"spike_epoch must be in 0..{num_epochs - 1}, got {spike_epoch}")
        if not 0.0 < spike_fraction <= 2.0:
            raise ValueError(f"spike_fraction must be in (0, 2], got {spike_fraction}")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        rng = as_generator(seed)
        epochs: List[EpochChurn] = []
        pop = pop0 = population
        surge = 0.0
        outstanding = 0.0  # surge sessions still in the network
        for epoch in range(num_epochs):
            if epoch == spike_epoch:
                surge = spike_fraction * pop
            arrivals = int(rng.poisson(base_rate * pop) + round(surge))
            # Surge visitors churn back out one epoch behind the surge.
            leaving_surge = min(outstanding, decay * outstanding + base_rate * pop0)
            departures = int(rng.poisson(base_rate * pop) + round(leaving_surge))
            departures = min(departures, max(0, pop + arrivals - min_population))
            epochs.append(EpochChurn(arrivals, departures))
            outstanding += round(surge) - round(leaving_surge)
            pop += arrivals - departures
            surge *= decay
            if surge < 1.0:
                surge = 0.0
        return cls(tuple(epochs), seed)


def _check_rates(num_epochs: int, population: int, join_rate: float, leave_rate: float) -> None:
    if num_epochs < 1:
        raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
    if population < 2:
        raise ValueError(f"population must be >= 2, got {population}")
    for name, rate in (("join_rate", join_rate), ("leave_rate", leave_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
