"""Epoch-driven dynamic-network reputation runtime.

The paper's power-law overlay exists *because* peers continually join by
preferential attachment and leave again; the static experiments freeze
that graph and model churn only as packet loss. This module runs
reputation aggregation on a network that actually evolves: a
:class:`ChurnTrace` drives epochs of session arrivals and departures on
a :class:`repro.network.mutable.MutableOverlay`, and each epoch one
gossip round is executed on any registered backend via
:func:`repro.core.backend.run_backend`.

Warm-start epochs
-----------------
A cold epoch gossips the published opinions from scratch:
``(value, weight) = (x_i, 1)`` at every peer. A *warm* epoch instead
resumes from the previous epoch's converged gossip pairs and applies
only the deltas, so the state starts within ``O(churn)`` of the new
fixpoint and converges in a handful of steps:

- a **survivor** keeps its converged ``(v_i, w_i)``; if its opinion
  moved by more than the Δ re-push threshold (``config.delta``,
  Algorithm 2's rule) the difference is added to its gossip value —
  the re-announcement that seeds the next round;
- a **leaver** hands its pair to a random neighbour (the paper's
  mass-conservation rule, Section 5.3) with its own published opinion
  retired from the pair, so departed opinions stop counting;
- a **joiner** enters with ``(x_j, 1)`` where ``x_j`` comes from the
  :class:`repro.trust.newcomer_policy.DynamicNewcomerPolicy` when one
  is installed (the policy also observes every join, so heavy identity
  churn automatically shrinks the benefit of the doubt).

With Δ = 0 the warm fixpoint is exactly the mean opinion of the current
peer set — the invariant ``sum(values)/sum(weights) = mean(x)`` is
maintained by construction through arbitrary churn.

Stop rules
----------
Epochs can stop two ways (``stop_rule``):

- ``"accuracy"`` (default): run the engine in fixed blocks of
  ``run_to_max`` steps and stop once the mean per-node distance to the
  state's own fixpoint ``sum(values)/sum(weights)`` is below
  ``epoch_tol``. This accuracy-matched rule makes cold and warm epochs
  directly comparable: both stop at the *same* network-wide accuracy,
  so the round counts isolate what warm-starting buys. Requires a
  backend with ``run_to_max`` support (dense/sparse).
- ``"protocol"``: the paper's distributed per-node stop protocol
  (``xi`` movement bound, warmup, patience) as run by every backend.
  Note that under this rule a round's length is governed by
  ``log(deviation / xi)`` at the *slowest* node, so warm starts save
  little: a single full-amplitude joiner opinion re-pays most of the
  mixing a cold start pays. Use it when protocol fidelity matters more
  than epoch latency.

Sharded epochs
--------------
The ``"sharded"`` backend runs dynamic epochs like any other
``run_to_max``-capable engine: every epoch executes against the fresh
:meth:`MutableOverlay.snapshot`, and because a shard partition is a
pure function of ``(graph, num_shards)``, the backend re-balances its
edge-cut shards automatically after churn — no partition state
survives an epoch, so departed peers can never pin a shard boundary.
Each ``run_backend`` call (one per accuracy-rule block) starts its own
worker pool; for large overlays prefer a bigger ``block_steps`` (or
``config.shard_workers = 1`` to run the shard schedule inline) so pool
startup amortises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.backend import (
    BackendCapabilityError,
    GossipConfig,
    choose_backend_name,
    get_backend,
    resolve_backend_name,
    run_backend,
)
from repro.network.conditions import EpochPartition
from repro.network.graph import Graph
from repro.network.mutable import MutableOverlay
from repro.runtime.trace import ChurnTrace
from repro.trust.newcomer_policy import DynamicNewcomerPolicy
from repro.utils.rng import stateless_child_sequence

#: Key offset for per-epoch replay streams (keeps them clear of sweep keys).
EPOCH_STREAM_KEY = 0xD1AA0000

#: Per-epoch child key of the adversary stream (clear of the gossip
#: block keys 1, 2, 3, ... used by the accuracy stop rule).
ATTACK_EPOCH_KEY = 0xA77AC

#: Per-epoch child key of the partition-repair stream (clear of the
#: gossip block keys and the attack key). Runs without a partition
#: never derive it, so installing one cannot perturb existing replays.
PARTITION_EPOCH_KEY = 0x9A1717

#: Epoch stop rules (see module docstring).
STOP_RULES = ("accuracy", "protocol")


def _estimate_errors(values: np.ndarray, weights: np.ndarray, truth: float) -> tuple:
    """``(mean, max)`` absolute estimate error against ``truth``.

    The mean is mass-weighted (``sum(|v - truth*w|) / sum(w)``) so a
    node whose gossip weight drained to ~0 — whose raw ratio is
    numerically meaningless — contributes in proportion to the weight
    it actually holds. The max is the raw ratio error over nodes
    carrying at least a millionth of the average weight (below that a
    ratio is noise, not an estimate).
    """
    total = float(weights.sum())
    mean_error = float(np.abs(values - truth * weights).sum() / total)
    carrying = weights > 1e-6 * total / max(1, weights.shape[0])
    if not np.any(carrying):
        return mean_error, float("nan")
    max_error = float(np.abs(values[carrying] / weights[carrying] - truth).max())
    return mean_error, max_error


@dataclass
class EpochRecord:
    """Everything one epoch produced."""

    epoch: int
    num_peers: int
    num_edges: int
    arrivals: int
    departures: int
    warm: bool
    steps: int
    push_messages: int
    converged_fraction: float
    true_mean: float
    max_abs_error: float
    mean_abs_error: float
    elapsed_seconds: float
    attack_events: int = 0

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly record."""
        return {
            "epoch": self.epoch,
            "num_peers": self.num_peers,
            "num_edges": self.num_edges,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "warm": self.warm,
            "steps": self.steps,
            "push_messages": self.push_messages,
            "converged_fraction": self.converged_fraction,
            "true_mean": self.true_mean,
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
            "elapsed_seconds": self.elapsed_seconds,
            "attack_events": self.attack_events,
        }


@dataclass
class DynamicRunResult:
    """Summary of a dynamic run: one :class:`EpochRecord` per epoch.

    Examples
    --------
    >>> from repro import ChurnTrace, GossipConfig, MutableOverlay, run_dynamic
    >>> overlay = MutableOverlay.grow_preferential(60, m=2, rng=0)
    >>> trace = ChurnTrace.steady(2, population=60, join_rate=0.02,
    ...                           leave_rate=0.02, seed=1)
    >>> result = run_dynamic(overlay, trace, GossipConfig(rng=2), backend="dense")
    >>> len(result.records)
    2
    >>> result.total_steps >= result.records[0].steps
    True
    """

    backend: str
    warm_start: bool
    records: List[EpochRecord] = field(default_factory=list)

    @property
    def total_steps(self) -> int:
        """Gossip steps summed over all epochs."""
        return sum(r.steps for r in self.records)

    @property
    def total_push_messages(self) -> int:
        """Push messages summed over all epochs."""
        return sum(r.push_messages for r in self.records)

    @property
    def steady_state_steps(self) -> float:
        """Mean steps per epoch *after* the first (the cold bootstrap).

        This is the number warm-start is judged on: epoch 0 is always a
        cold round (there is no previous outcome to resume from).
        """
        tail = self.records[1:] or self.records
        return float(np.mean([r.steps for r in tail]))

    @property
    def final_record(self) -> EpochRecord:
        """The last epoch's record."""
        return self.records[-1]

    def to_dict(self) -> Dict:
        """JSON-friendly result."""
        return {
            "backend": self.backend,
            "warm_start": self.warm_start,
            "total_steps": self.total_steps,
            "total_push_messages": self.total_push_messages,
            "steady_state_steps": self.steady_state_steps,
            "epochs": [r.to_dict() for r in self.records],
        }

    def to_text(self) -> str:
        """Human-readable per-epoch table."""
        lines = [
            f"dynamic run: backend={self.backend}  warm_start={self.warm_start}",
            "  epoch  peers   edges  +join  -leave  steps  max|err|    mean|err|",
        ]
        for r in self.records:
            lines.append(
                f"  {r.epoch:5d}  {r.num_peers:5d}  {r.num_edges:6d}  "
                f"{r.arrivals:5d}  {r.departures:6d}  {r.steps:5d}  "
                f"{r.max_abs_error:.2e}  {r.mean_abs_error:.2e}"
            )
        lines.append(
            f"  steady-state steps/epoch: {self.steady_state_steps:.1f}  "
            f"(total {self.total_steps} over {len(self.records)} epochs)"
        )
        return "\n".join(lines)


class DynamicReputationRuntime:
    """Reputation aggregation over an overlay with real join/leave churn.

    Parameters
    ----------
    overlay:
        The evolving topology (mutated in place as the trace replays).
    config:
        Shared gossip knobs; ``config.delta`` is the Δ re-push
        threshold applied between epochs, ``config.rng`` is ignored
        (epoch streams derive from the trace seed so runs replay).
    backend:
        Registered backend name or ``"auto"`` (resolved once against
        the initial snapshot).
    warm_start:
        Resume each epoch from the previous converged state (see module
        docstring); ``False`` re-gossips from scratch every epoch.
    stop_rule:
        ``"accuracy"`` (default) or ``"protocol"`` — see module
        docstring.
    epoch_tol:
        Accuracy-rule stop threshold: mean per-node distance to the
        state's fixpoint.
    block_steps:
        Accuracy-rule granularity: gossip steps per ``run_to_max``
        block between convergence checks.
    warm_warmup_steps:
        Protocol-rule warmup override for warm epochs. A warm epoch
        starts next to its fixpoint, so the engines' default
        ``ceil(log2 N) + 1`` warmup would dominate the round.
    newcomer_policy:
        Optional :class:`DynamicNewcomerPolicy` granting joiners their
        initial opinion (and observing the join rate).
    opinion_drift:
        Fraction of surviving peers that re-draw their opinion each
        epoch (models fresh transactions changing local trust).
    drift_scale:
        Amplitude of each re-drawn opinion's move: the new opinion is
        the old one plus ``U(-drift_scale, drift_scale)``, clipped to
        ``[0, 1]`` (local trust moves incrementally as transactions
        accumulate; ``1.0`` makes re-draws effectively uniform).
    attachment_m:
        Edges each joiner wires (preferential attachment).
    attack:
        Optional :class:`repro.attacks.models.AttackModel` acting on the
        live runtime: its :meth:`~repro.attacks.models.AttackModel.on_epoch`
        hook runs once per epoch (after churn and drift, before gossip)
        with a replayable per-epoch stream — whitewashers cycle
        identities through :meth:`whitewash_peer`, sybil floods join
        through :meth:`join_attacker`, oscillators flip opinions through
        :meth:`republish_opinion`. The event count lands in
        :attr:`EpochRecord.attack_events`.
    partition:
        Optional :class:`repro.network.conditions.EpochPartition`
        replayed against the overlay: every epoch in
        ``[start_epoch, heal_epoch)`` the cross-group edges
        (``group = pid % num_groups``) are cut — including any fresh
        ones churn or attacks wired — and each group is re-bridged
        internally so it keeps aggregating as its own island; at
        ``heal_epoch`` the surviving cut edges (both endpoints alive,
        edge not re-wired meanwhile) are restored. Churn repair during
        the window is group-scoped (see
        :meth:`MutableOverlay.bridge_components`), so overlay
        maintenance never heals the partition early. Cut/restore/bridge
        totals land on :attr:`partition_cut_edges`,
        :attr:`partition_restored_edges` and :attr:`partition_bridges`
        (runtime-level counters; epoch records are unchanged so replay
        goldens stay stable).
    """

    def __init__(
        self,
        overlay: MutableOverlay,
        *,
        config: Optional[GossipConfig] = None,
        backend: str = "auto",
        warm_start: bool = True,
        stop_rule: str = "accuracy",
        epoch_tol: float = 1e-3,
        block_steps: int = 4,
        warm_warmup_steps: int = 2,
        newcomer_policy: Optional[DynamicNewcomerPolicy] = None,
        opinion_drift: float = 0.0,
        drift_scale: float = 0.1,
        attachment_m: int = 2,
        attack=None,
        partition: Optional[EpochPartition] = None,
    ):
        if stop_rule not in STOP_RULES:
            raise ValueError(f"stop_rule must be one of {STOP_RULES}, got {stop_rule!r}")
        if epoch_tol <= 0:
            raise ValueError(f"epoch_tol must be positive, got {epoch_tol}")
        if block_steps < 1:
            raise ValueError(f"block_steps must be >= 1, got {block_steps}")
        if warm_warmup_steps < 1:
            raise ValueError(f"warm_warmup_steps must be >= 1, got {warm_warmup_steps}")
        if not 0.0 <= opinion_drift <= 1.0:
            raise ValueError(f"opinion_drift must be in [0, 1], got {opinion_drift}")
        if not 0.0 < drift_scale <= 1.0:
            raise ValueError(f"drift_scale must be in (0, 1], got {drift_scale}")
        if attachment_m < 1:
            raise ValueError(f"attachment_m must be >= 1, got {attachment_m}")
        self._overlay = overlay
        self._config = config if config is not None else GossipConfig()
        graph, _ = overlay.snapshot()
        # The accuracy rule chains fixed-budget blocks, so steer "auto"
        # towards the run_to_max-capable engines (the message engine
        # would be chosen for tiny overlays and then rejected below).
        auto_config = (
            replace(self._config, run_to_max=True)
            if stop_rule == "accuracy"
            else self._config
        )
        self._backend = (
            choose_backend_name(graph, auto_config)
            if backend == "auto"
            else resolve_backend_name(backend)
        )
        if stop_rule == "accuracy" and not getattr(
            get_backend(self._backend), "supports_run_to_max", False
        ):
            raise BackendCapabilityError(
                f"stop_rule 'accuracy' needs run_to_max support, which backend "
                f"{self._backend!r} lacks; use 'dense'/'sparse' or stop_rule='protocol'"
            )
        self._stop_rule = stop_rule
        self._epoch_tol = float(epoch_tol)
        self._block_steps = int(block_steps)
        self._warm_start = bool(warm_start)
        self._warm_warmup_steps = int(warm_warmup_steps)
        self._policy = newcomer_policy
        self._drift = float(opinion_drift)
        self._drift_scale = float(drift_scale)
        self._m = int(attachment_m)
        self._attack = attack
        if partition is not None and not isinstance(partition, EpochPartition):
            raise ValueError(
                f"partition must be an EpochPartition, got {type(partition).__name__}"
            )
        self._partition = partition
        # Cross-group edges removed by the active partition, pending
        # restoration at heal_epoch.
        self._cut_edges: "set" = set()
        #: Cross-group edges cut over the run (re-cuts of churn-wired
        #: edges included).
        self.partition_cut_edges = 0
        #: Cut edges restored at heal time (both endpoints still alive,
        #: edge not re-wired meanwhile).
        self.partition_restored_edges = 0
        #: Intra-group bridge edges added to keep each island connected.
        self.partition_bridges = 0
        # Departures caused by the attack hook this epoch (bridge gate).
        self._attack_removed_peers = 0
        # Replay root + epoch counter, bound by initialize(); every
        # epoch's streams derive statelessly from (root, epoch index).
        self._root: Optional[np.random.SeedSequence] = None
        self._next_epoch = 0
        # Per-peer state indexed by peer id (grown on demand): published
        # opinion, gossip value, gossip weight.
        self._x = np.zeros(0, dtype=np.float64)
        self._v = np.zeros(0, dtype=np.float64)
        self._w = np.zeros(0, dtype=np.float64)

    @property
    def backend(self) -> str:
        """Resolved backend name every epoch runs on."""
        return self._backend

    @property
    def overlay(self) -> MutableOverlay:
        """The (mutated-in-place) overlay."""
        return self._overlay

    def estimates(self) -> np.ndarray:
        """Current per-peer reputation estimates, in ``peer_ids()`` order."""
        pids = self._overlay.peer_ids()
        return self._v[pids] / self._w[pids]

    def opinions(self) -> np.ndarray:
        """Current published opinions, in ``peer_ids()`` order."""
        return self._x[self._overlay.peer_ids()]

    # -- state plumbing ------------------------------------------------------

    def _grow_state(self) -> None:
        needed = self._overlay.max_peer_id + 1
        if needed > self._x.shape[0]:
            capacity = max(16, 2 * self._x.shape[0], needed)
            for name in ("_x", "_v", "_w"):
                old = getattr(self, name)
                grown = np.zeros(capacity, dtype=np.float64)
                grown[: old.shape[0]] = old
                setattr(self, name, grown)

    def _seed_initial_opinions(self, rng: np.random.Generator) -> None:
        pids = self._overlay.peer_ids()
        self._grow_state()
        self._x[pids] = rng.random(pids.shape[0])
        self._v[pids] = self._x[pids]
        self._w[pids] = 1.0

    # -- epoch execution -----------------------------------------------------

    def initialize(
        self,
        seed: "int | np.random.SeedSequence",
        *,
        opinions: "float | np.ndarray | None" = None,
    ) -> None:
        """Bind the replay root and seed per-peer state; epochs restart at 0.

        This is the external-driver entry point (the reputation service
        of :mod:`repro.service` calls it instead of :meth:`run`):
        ``seed`` fixes every replay stream, and ``opinions`` optionally
        overrides the random initial opinions — a scalar broadcasts
        (``0.0`` is the paper's zero-initial-trust world before any
        report arrived), an array must match ``overlay.peer_ids()``
        order. Gossip pairs start at ``(x, 1)`` either way.
        """
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._root = root
        self._next_epoch = 0
        if opinions is None:
            self._seed_initial_opinions(
                np.random.default_rng(stateless_child_sequence(root, EPOCH_STREAM_KEY - 1))
            )
            return
        pids = self._overlay.peer_ids()
        self._grow_state()
        values = np.broadcast_to(
            np.asarray(opinions, dtype=np.float64), pids.shape
        ).copy()
        self._x[pids] = values
        self._v[pids] = values
        self._w[pids] = 1.0

    def step(self, *, arrivals: int = 0, departures: int = 0) -> EpochRecord:
        """Advance one epoch (churn → attack hook → gossip round).

        The externally-driven sibling of :meth:`run`'s loop body: callers
        that feed their own deltas — :meth:`republish_opinion` between
        steps, e.g. the report fold of
        :class:`repro.service.ReputationService` — advance the runtime
        one warm-start epoch at a time. Requires :meth:`initialize`
        first; epoch streams stay replayable because each derives
        statelessly from ``(seed, epoch index)``.
        """
        if self._root is None:
            raise RuntimeError("call initialize(seed) before step()")
        epoch = self._next_epoch
        child = stateless_child_sequence(self._root, EPOCH_STREAM_KEY + epoch)
        record = self._run_epoch(epoch, arrivals, departures, child)
        self._next_epoch += 1
        return record

    def run(self, trace: ChurnTrace) -> DynamicRunResult:
        """Replay ``trace`` epoch by epoch; return the per-epoch records."""
        self.initialize(trace.seed)
        result = DynamicRunResult(backend=self._backend, warm_start=self._warm_start)
        for churn in trace:
            result.records.append(
                self.step(arrivals=churn.arrivals, departures=churn.departures)
            )
        return result

    def _run_epoch(
        self,
        epoch: int,
        arrivals: int,
        departures: int,
        seed: np.random.SeedSequence,
    ) -> EpochRecord:
        started = time.perf_counter()
        rng = np.random.default_rng(seed)
        overlay = self._overlay

        departures = self._apply_departures(departures, rng)
        if departures:
            # Overlay maintenance: departures may have split the
            # overlay, and a partitioned overlay cannot aggregate
            # globally (each island would converge to its own mean).
            # Joins and rewires only add edges, so the O(N + E)
            # connected-components sweep is skipped without them.
            # During a scheduled partition window the repair is
            # group-scoped so maintenance never re-joins the islands.
            self._overlay.bridge_components(rng=rng, groups=self._partition_groups(epoch))
        arrivals = self._apply_arrivals(epoch, arrivals, rng)
        self._apply_drift(rng)

        attack_events = 0
        if self._attack is not None:
            attack_rng = np.random.default_rng(
                stateless_child_sequence(seed, ATTACK_EPOCH_KEY)
            )
            self._attack_removed_peers = 0
            attack_events = int(self._attack.on_epoch(self, epoch, attack_rng))
            if self._attack_removed_peers:
                # Only identity churn (whitewash leave/rejoin) can split
                # the overlay; republish/join-only attacks skip the
                # O(N + E) sweep, same as the join-only branch above.
                self._overlay.bridge_components(
                    rng=attack_rng, groups=self._partition_groups(epoch)
                )

        self._apply_partition(epoch, seed)

        graph, pids = overlay.snapshot()
        warm = self._warm_start and epoch > 0
        if warm:
            values = self._v[pids].reshape(-1, 1).copy()
            weights = self._w[pids].reshape(-1, 1).copy()
        else:
            values = self._x[pids].reshape(-1, 1).copy()
            weights = np.ones_like(values)

        if self._stop_rule == "protocol":
            # The shortened warm warmup only applies to step-synchronous
            # engines; event-driven backends (async) have no per-step
            # warmup to shorten and reject the override outright.
            stepwise = getattr(get_backend(self._backend), "supports_run_to_max", False)
            warmup = self._warm_warmup_steps if warm and stepwise else self._config.warmup_steps
            epoch_config = replace(
                self._config, rng=stateless_child_sequence(seed, 1), warmup_steps=warmup
            )
            outcome = run_backend(
                graph, values, weights, config=epoch_config, backend=self._backend
            )
            values, weights = outcome.values, outcome.weights
            steps = outcome.steps
            push_messages = outcome.push_messages
            converged_fraction = float(np.mean(outcome.converged))
        else:
            steps, push_messages, converged_fraction, values, weights = self._run_to_accuracy(
                graph, values, weights, seed
            )
        self._v[pids] = values[:, 0]
        self._w[pids] = weights[:, 0]

        truth = float(self._x[pids].mean())
        mean_error, max_error = _estimate_errors(values[:, 0], weights[:, 0], truth)
        return EpochRecord(
            epoch=epoch,
            num_peers=graph.num_nodes,
            num_edges=graph.num_edges,
            arrivals=arrivals,
            departures=departures,
            warm=warm,
            steps=steps,
            push_messages=push_messages,
            converged_fraction=converged_fraction,
            true_mean=truth,
            max_abs_error=max_error,
            mean_abs_error=mean_error,
            elapsed_seconds=time.perf_counter() - started,
            attack_events=attack_events,
        )

    def _partition_groups(self, epoch: int) -> "Optional[Dict[int, int]]":
        """Group-scoping map for overlay repair while the partition is
        active (``None`` otherwise — the unscoped legacy behaviour)."""
        if self._partition is None or not self._partition.active(epoch):
            return None
        return {
            int(pid): self._partition.group(int(pid))
            for pid in self._overlay.peer_ids()
        }

    def _apply_partition(self, epoch: int, seed: np.random.SeedSequence) -> None:
        """Replay the scheduled partition: cut cross-group edges while
        the window is active, restore the survivors at heal time.

        Runs after churn and the attack hook (so edges those wired
        across the divide are cut the same epoch) and before the
        snapshot the gossip round runs on. The cut itself is
        deterministic — which edges go is a pure function of the edge
        set and ``pid % num_groups`` — and only the intra-group
        re-bridging draws randomness, from a dedicated
        ``PARTITION_EPOCH_KEY`` child stream so partition-free replays
        are untouched.
        """
        partition = self._partition
        if partition is None:
            return
        overlay = self._overlay
        if partition.active(epoch):
            cut = 0
            for u, v in overlay.edges():
                if partition.group(u) != partition.group(v):
                    overlay.remove_edge(u, v)
                    self._cut_edges.add((u, v))
                    cut += 1
            self.partition_cut_edges += cut
            if cut:
                # Cutting can fragment a group whose internal
                # connectivity ran through the far side; re-bridge each
                # group into one island.
                part_rng = np.random.default_rng(
                    stateless_child_sequence(seed, PARTITION_EPOCH_KEY)
                )
                self.partition_bridges += overlay.bridge_components(
                    rng=part_rng, groups=self._partition_groups(epoch)
                )
        elif self._cut_edges and epoch >= partition.heal_epoch:
            restored = 0
            for u, v in sorted(self._cut_edges):
                if (
                    overlay.has_peer(u)
                    and overlay.has_peer(v)
                    and not overlay.has_edge(u, v)
                ):
                    overlay.add_edge(u, v)
                    restored += 1
            self._cut_edges.clear()
            self.partition_restored_edges += restored

    def _run_to_accuracy(
        self,
        graph: Graph,
        values: np.ndarray,
        weights: np.ndarray,
        seed: np.random.SeedSequence,
    ) -> tuple:
        """Gossip in ``run_to_max`` blocks until the state sits within
        ``epoch_tol`` of its own fixpoint (mean per-node distance).

        The fixpoint ``sum(values)/sum(weights)`` is a conserved
        quantity of the round, so the check needs no external ground
        truth. The distance is *mass-weighted* —
        ``sum(|v_i - fixpoint * w_i|) / sum(w)`` — which equals the
        weight-averaged estimate error while staying immune to the
        push-sum weight-drain artefact (a node holding negligible
        gossip weight has a meaningless raw ratio but also negligible
        influence on what it reports onward). ``config.max_steps``
        bounds the total budget (the epoch then records
        ``converged_fraction = 0.0`` instead of raising).
        """
        total_weight = float(weights.sum())
        fixpoint = float(values.sum()) / total_weight
        budget = self._config.max_steps
        steps = 0
        push_messages = 0
        block = 0
        # A quiet warm epoch (all churn Δ-gated away) can enter already
        # within tolerance; converging in zero rounds is then correct.
        residual = np.abs(values[:, 0] - fixpoint * weights[:, 0]).sum() / total_weight
        if float(residual) <= self._epoch_tol:
            return steps, push_messages, 1.0, values, weights
        while True:
            block_config = replace(
                self._config,
                rng=stateless_child_sequence(seed, 1 + block),
                max_steps=min(self._block_steps, budget - steps),
                run_to_max=True,
                warmup_steps=None,
            )
            outcome = run_backend(
                graph, values, weights, config=block_config, backend=self._backend
            )
            values, weights = outcome.values, outcome.weights
            steps += outcome.steps
            push_messages += outcome.push_messages
            block += 1
            residual = np.abs(values[:, 0] - fixpoint * weights[:, 0]).sum() / total_weight
            if float(residual) <= self._epoch_tol:
                return steps, push_messages, 1.0, values, weights
            if steps >= budget:
                return steps, push_messages, 0.0, values, weights

    def _apply_departures(self, departures: int, rng: np.random.Generator) -> int:
        """Depart up to ``departures`` peers, handing their mass onward."""
        overlay = self._overlay
        applied = 0
        for _ in range(departures):
            if overlay.num_peers <= max(3, self._m + 1):
                break
            pids = overlay.peer_ids()
            victim = int(pids[rng.integers(pids.shape[0])])
            # Mass conservation with opinion retirement: the heir
            # receives the leaver's converged pair minus the leaver's
            # own published contribution (x, 1), so the departed opinion
            # stops counting toward the global ratio.
            self._depart_peer(victim, rng)
            applied += 1
        return applied

    def _apply_arrivals(self, epoch: int, arrivals: int, rng: np.random.Generator) -> int:
        """Join ``arrivals`` fresh peers via preferential attachment."""
        overlay = self._overlay
        for _ in range(arrivals):
            pid = overlay.add_peer(m=self._m, rng=rng)
            self._grow_state()
            opinion = self._newcomer_opinion(epoch, rng)
            self._x[pid] = opinion
            self._v[pid] = opinion
            self._w[pid] = 1.0
        return arrivals

    # -- adversary surface ---------------------------------------------------
    # The operations an AttackModel.on_epoch hook composes: they reuse the
    # leaver/joiner mass bookkeeping, so any attack sequence preserves the
    # Δ=0 invariant sum(values)/sum(weights) == mean(x) over live peers.

    def _depart_peer(self, pid: int, rng: np.random.Generator) -> None:
        """The leaver rule, in one place for churn and attacks alike:
        remove ``pid``, hand its pair — minus its own published opinion
        ``(x, 1)`` — to a former neighbour, zero its state. This is the
        only code maintaining the Δ=0 mass invariant on departure."""
        former = self._overlay.remove_peer(pid, rewire_isolated=True, rng=rng)
        if former:
            heir = int(former[rng.integers(len(former))])
        else:
            live = self._overlay.peer_ids()
            heir = int(live[rng.integers(live.shape[0])])
        self._v[heir] += self._v[pid] - self._x[pid]
        self._w[heir] += self._w[pid] - 1.0
        self._v[pid] = self._w[pid] = self._x[pid] = 0.0

    def _newcomer_opinion(
        self,
        epoch: int,
        rng: np.random.Generator,
        *,
        fallback: Optional[float] = None,
    ) -> float:
        """The joiner grant, in one place: the installed newcomer policy
        (which also observes the join), else ``fallback``, else a fresh
        uniform opinion. Call *after* the peer joined, so the policy
        sees the post-join population."""
        if self._policy is not None:
            self._policy.observe_join(now=float(epoch), population=self._overlay.num_peers)
            return float(self._policy.initial_trust(now=float(epoch)))
        if fallback is not None:
            return float(fallback)
        return float(rng.random())

    def republish_opinion(self, pid: int, value: float) -> None:
        """Publish a changed opinion now (Algorithm 2's re-announcement).

        The opinion delta is injected into the peer's gossip value
        unconditionally — an adversary re-announces whatever it wants,
        the Δ gate only filters *honest* drift.
        """
        self._v[pid] += value - self._x[pid]
        self._x[pid] = value

    def join_attacker(
        self, opinion: float, rng: np.random.Generator, *, m: Optional[int] = None
    ) -> int:
        """Join one adversarial identity publishing ``opinion``; return its id.

        Unlike honest arrivals the opinion is the attacker's choice, not
        the newcomer policy's grant — that asymmetry is what sybil
        floods exploit.
        """
        pid = self._overlay.add_peer(m=self._m if m is None else int(m), rng=rng)
        self._grow_state()
        self._x[pid] = self._v[pid] = float(opinion)
        self._w[pid] = 1.0
        return pid

    def whitewash_peer(
        self,
        pid: int,
        rng: np.random.Generator,
        *,
        epoch: int = 0,
        newcomer_opinion: float = 0.0,
    ) -> int:
        """Cycle ``pid``'s identity: leave, then rejoin fresh; return the new id.

        The departure follows the leaver rule (mass handed to a former
        neighbour with the published opinion retired); the rejoin enters
        with the newcomer policy's grant when one is installed, else
        ``newcomer_opinion`` (the paper's zero-trust default — which is
        exactly why whitewashing buys nothing here).
        """
        self._depart_peer(pid, rng)
        self._attack_removed_peers += 1
        new_pid = self._overlay.add_peer(m=self._m, rng=rng)
        self._grow_state()
        opinion = self._newcomer_opinion(epoch, rng, fallback=newcomer_opinion)
        self._x[new_pid] = self._v[new_pid] = opinion
        self._w[new_pid] = 1.0
        return new_pid

    def _apply_drift(self, rng: np.random.Generator) -> None:
        """Re-draw a fraction of opinions; Δ-gate the re-push corrections."""
        if self._drift <= 0.0:
            return
        pids = self._overlay.peer_ids()
        moved = pids[rng.random(pids.shape[0]) < self._drift]
        if moved.shape[0] == 0:
            return
        jitter = rng.uniform(-self._drift_scale, self._drift_scale, moved.shape[0])
        fresh = np.clip(self._x[moved] + jitter, 0.0, 1.0)
        delta = self._config.delta
        changed = np.abs(fresh - self._x[moved]) > delta
        # Algorithm 2's Δ rule: only opinions that moved materially are
        # re-announced (their delta is injected into the gossip value);
        # sub-threshold drift is neither published nor pushed.
        repush = moved[changed]
        self._v[repush] += fresh[changed] - self._x[repush]
        self._x[repush] = fresh[changed]


def run_dynamic(
    overlay: "MutableOverlay | Graph",
    trace: ChurnTrace,
    config: Optional[GossipConfig] = None,
    *,
    backend: str = "auto",
    warm_start: bool = True,
    stop_rule: str = "accuracy",
    epoch_tol: float = 1e-3,
    block_steps: int = 4,
    warm_warmup_steps: int = 2,
    newcomer_policy: Optional[DynamicNewcomerPolicy] = None,
    opinion_drift: float = 0.0,
    drift_scale: float = 0.1,
    attachment_m: int = 2,
    attack=None,
    partition: Optional[EpochPartition] = None,
) -> DynamicRunResult:
    """Run reputation aggregation over a churning overlay, one epoch per trace entry.

    The dynamic-network sibling of :func:`repro.aggregate`: where
    ``aggregate`` runs one gossip round on a frozen graph, this replays
    a :class:`ChurnTrace` against an evolving
    :class:`~repro.network.mutable.MutableOverlay` and runs one round
    per epoch on any registered backend, warm-starting each round from
    the last (see :class:`DynamicReputationRuntime`).

    Parameters
    ----------
    overlay:
        A :class:`MutableOverlay`, or a :class:`Graph` to wrap (the
        overlay is mutated in place as the trace replays).
    trace:
        The seeded churn schedule; it also seeds every replay stream.
    config:
        Shared gossip knobs (:class:`repro.core.backend.GossipConfig`).
    backend, warm_start, stop_rule, epoch_tol, block_steps, warm_warmup_steps, \
newcomer_policy, opinion_drift, drift_scale, attachment_m, attack, partition:
        See :class:`DynamicReputationRuntime`.

    Examples
    --------
    >>> from repro.network.mutable import MutableOverlay
    >>> from repro.runtime.trace import ChurnTrace
    >>> overlay = MutableOverlay.grow_preferential(60, m=2, rng=3)
    >>> trace = ChurnTrace.steady(3, population=60, join_rate=0.05, leave_rate=0.05, seed=4)
    >>> result = run_dynamic(overlay, trace, GossipConfig(delta=0.0), backend="dense", epoch_tol=1e-5)
    >>> len(result.records)
    3
    >>> result.final_record.mean_abs_error < 1e-3
    True
    """
    if isinstance(overlay, Graph):
        overlay = MutableOverlay.from_graph(overlay)
    runtime = DynamicReputationRuntime(
        overlay,
        config=config,
        backend=backend,
        warm_start=warm_start,
        stop_rule=stop_rule,
        epoch_tol=epoch_tol,
        block_steps=block_steps,
        warm_warmup_steps=warm_warmup_steps,
        newcomer_policy=newcomer_policy,
        opinion_drift=opinion_drift,
        drift_scale=drift_scale,
        attachment_m=attachment_m,
        attack=attack,
        partition=partition,
    )
    return runtime.run(trace)
