"""``repro.aggregate`` — one entry point over every gossip backend.

Historically each aggregation variant and each engine had its own entry
point (seven in total); every experiment, benchmark, attack and
simulation caller hard-coded one. The facade collapses them:

>>> import numpy as np
>>> from repro import aggregate, GossipConfig
>>> from repro.network.topology_example import example_network
>>> g = example_network()
>>> out = aggregate(g, np.arange(10.0), GossipConfig(xi=1e-6, rng=7))
>>> bool(np.allclose(out.estimates, 4.5, atol=1e-3))
True

``trust`` may be:

- a plain per-node array (shape ``(N,)`` or ``(N, d)``) — gossip
  averages it (weights 1 everywhere), the uniform-gossip setting of the
  paper's Section 5.1 analysis;
- a :class:`repro.trust.matrix.TrustMatrix` — the ``variant`` parameter
  selects the paper's aggregation variant ("single-global",
  "vector-global", "single-gclr", "vector-gclr"), and the facade builds
  the exact initial state the dedicated entry points use;
- a list/tuple of either of the above — one *reputation channel* per
  entry, gossiped in a single multi-channel pass: the facade stacks the
  per-channel initial states channel-major and runs them under
  ``num_channels = len(trust)``, so V channels pay for one round of
  sampling draws instead of V (Golem's computing + delegating dual-rank
  is the motivating workload). ``GossipOutcome.channel_estimates(c)``
  slices channel ``c`` back out.

``backend`` names any registered gossip backend
(:func:`repro.core.backend.available_backends`); ``"auto"`` picks
message → dense → sparse by node count/density. The return value is
always the engines' common :class:`repro.core.results.GossipOutcome`;
for the rich per-variant result objects (true values, eq.-6
reputations) keep using :func:`repro.core.vector_gclr.aggregate_vector_gclr`
and friends — they run through this same backend layer.

``aggregate`` runs one round on a *frozen* topology. For a network
with real session churn — peers joining by preferential attachment and
leaving epoch over epoch — use its dynamic sibling
:func:`repro.run_dynamic` (:mod:`repro.runtime`), which replays a
seeded churn trace over a mutable overlay and warm-starts each epoch's
round from the last through this same backend layer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix

#: Aggregation variants accepted when ``trust`` is a TrustMatrix.
VARIANTS = ("mean", "single-global", "vector-global", "single-gclr", "vector-gclr")


def _validated_targets(num_nodes: int, targets: Optional[Sequence[int]]) -> list:
    """Target columns for the vector variants (same rules as the entry points)."""
    if targets is None:
        return list(range(num_nodes))
    resolved = [int(t) for t in targets]
    if not resolved:
        raise ValueError("targets must be non-empty")
    if any(t < 0 or t >= num_nodes for t in resolved):
        raise ValueError(f"targets outside 0..{num_nodes - 1}")
    if len(set(resolved)) != len(resolved):
        raise ValueError("targets must be distinct")
    return resolved


def _initial_state(
    graph: Graph,
    trust: Union[TrustMatrix, np.ndarray],
    variant: Optional[str],
    *,
    target: Optional[int],
    targets: Optional[Sequence[int]],
    convention: str,
    designated_node: Optional[int],
) -> tuple:
    """Build ``(values, weights, extras)`` for the requested variant."""
    if not isinstance(trust, TrustMatrix):
        values = np.asarray(trust, dtype=np.float64)
        if variant not in (None, "mean"):
            raise ValueError(
                f"variant {variant!r} needs a TrustMatrix; got a plain array "
                "(arrays are averaged with the 'mean' variant)"
            )
        if values.shape[0] != graph.num_nodes:
            raise ValueError(
                f"values must have one row per node ({graph.num_nodes}), got shape {values.shape}"
            )
        return values, np.ones_like(values, dtype=np.float64), None

    if graph.num_nodes != trust.num_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes but trust matrix has {trust.num_nodes}"
        )
    variant = variant if variant is not None else "vector-global"
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    if variant == "mean":
        raise ValueError("variant 'mean' averages a plain array, not a TrustMatrix")

    if variant == "single-global":
        from repro.core.single_global import initial_state_single_global

        if target is None:
            raise ValueError("variant 'single-global' requires target=<node id>")
        values, weights = initial_state_single_global(trust, int(target), convention)
        return values, weights, None

    if variant == "vector-global":
        from repro.core.vector_global import initial_state_vector_global

        resolved = _validated_targets(graph.num_nodes, targets)
        values, weights = initial_state_vector_global(trust, resolved, convention)
        return values, weights, None

    from repro.core.single_gclr import pick_designated_node

    designated = (
        pick_designated_node(graph) if designated_node is None else int(designated_node)
    )
    if not 0 <= designated < graph.num_nodes or graph.degree(designated) == 0:
        raise ValueError(
            f"designated_node {designated} must be a non-isolated node id "
            "(stranded gossip weight would leave every ratio undefined)"
        )
    if variant == "single-gclr":
        from repro.core.single_gclr import initial_state_single_gclr

        if target is None:
            raise ValueError("variant 'single-gclr' requires target=<node id>")
        values, weights, counts = initial_state_single_gclr(trust, int(target), designated)
        return values, weights, {"count": counts}

    from repro.core.vector_gclr import initial_state_vector_gclr

    resolved = _validated_targets(graph.num_nodes, targets)
    values, weights, counts = initial_state_vector_gclr(trust, resolved, designated)
    return values, weights, {"count": counts}


def _stacked_channel_state(
    graph: Graph,
    channels: Sequence[Union[TrustMatrix, np.ndarray]],
    variant: Optional[str],
    *,
    target: Optional[int],
    targets: Optional[Sequence[int]],
    convention: str,
    designated_node: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, Optional[Dict[str, np.ndarray]]]:
    """Channel-major stacked ``(values, weights, extras)`` for V channels.

    Each entry of ``channels`` goes through the exact per-variant
    initial-state construction a single-channel call would use; the
    results are horizontally stacked so channel ``c`` owns columns
    ``[c * width, (c + 1) * width)`` — the layout the engines' per-channel
    convergence assumes.
    """
    if not channels:
        raise ValueError("trust sequence must contain at least one channel")
    values_list: List[np.ndarray] = []
    weights_list: List[np.ndarray] = []
    extras_list: List[Optional[Dict[str, np.ndarray]]] = []
    width: Optional[int] = None
    for index, channel_trust in enumerate(channels):
        values, weights, extras = _initial_state(
            graph,
            channel_trust,
            variant,
            target=target,
            targets=targets,
            convention=convention,
            designated_node=designated_node,
        )
        if values.ndim == 1:
            values = values.reshape(-1, 1)
            weights = weights.reshape(-1, 1)
        if extras is not None:
            extras = {
                name: (array.reshape(-1, 1) if array.ndim == 1 else array)
                for name, array in extras.items()
            }
        if width is None:
            width = values.shape[1]
        elif values.shape[1] != width:
            raise ValueError(
                f"trust channel {index} produces {values.shape[1]} columns but "
                f"channel 0 produced {width}; every channel must aggregate the "
                "same number of components"
            )
        values_list.append(values)
        weights_list.append(weights)
        extras_list.append(extras)
    extra_keys = {frozenset(extras or ()) for extras in extras_list}
    if len(extra_keys) != 1:
        raise ValueError("trust channels produced inconsistent extra components")
    stacked_extras: Optional[Dict[str, np.ndarray]] = None
    if extras_list[0]:
        stacked_extras = {
            name: np.hstack([extras[name] for extras in extras_list])
            for name in extras_list[0]
        }
    return np.hstack(values_list), np.hstack(weights_list), stacked_extras


def aggregate(
    graph: Graph,
    trust: Union[TrustMatrix, np.ndarray, Sequence[Union[TrustMatrix, np.ndarray]]],
    config: Optional[GossipConfig] = None,
    *,
    backend: str = "auto",
    variant: Optional[str] = None,
    target: Optional[int] = None,
    targets: Optional[Sequence[int]] = None,
    convention: str = "observers",
    designated_node: Optional[int] = None,
    extras: Optional[Dict[str, np.ndarray]] = None,
) -> GossipOutcome:
    """Run one reputation-aggregation gossip round on any backend.

    Parameters
    ----------
    graph:
        Overlay topology the gossip runs over.
    trust:
        A :class:`~repro.trust.matrix.TrustMatrix` (aggregated per
        ``variant``), a per-node array to average, or a list/tuple of
        either — one reputation channel per entry, stacked
        channel-major and gossiped in a single
        ``num_channels = len(trust)`` pass (every channel must produce
        the same column count; ``config.num_channels``, when set, must
        match).
    config:
        Shared knobs of the round
        (:class:`repro.core.backend.GossipConfig`); defaults apply when
        omitted. Includes the performance knobs: ``dtype`` ("float32"
        halves state traffic on the dense/sparse/sharded engines;
        float64-only backends raise
        :class:`repro.core.errors.UnsupportedDtypeError` rather than
        silently casting), ``kernel`` (sparse-engine push kernel) and
        ``shard_workers`` (sharded executor/worker knob — see
        :doc:`docs/performance.md <../docs/performance>`).
    backend:
        Registered backend name, or ``"auto"`` (message → dense →
        sparse by node count/density).
    variant:
        Aggregation variant for TrustMatrix input; default
        ``"vector-global"``. One of ``"single-global"``,
        ``"vector-global"``, ``"single-gclr"``, ``"vector-gclr"``
        (``"mean"`` is implied for array input).
    target:
        Target node for the single-target variants.
    targets:
        Tracked target columns for the vector variants (default: all).
    convention:
        ``"observers"`` or ``"all"`` (see
        :mod:`repro.core.single_global`).
    designated_node:
        Gclr variants: the single node carrying gossip weight 1
        (default: lowest-id non-isolated node).
    extras:
        Additional components to gossip alongside (array input only —
        the gclr variants reserve the extras channel for their observer
        count).

    Returns
    -------
    GossipOutcome
        The engines' common result record: final values/weights/extras,
        steps, message counts, per-node convergence flags.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import GossipConfig, aggregate
    >>> from repro.network.topology_example import example_network
    >>> graph = example_network()
    >>> out = aggregate(graph, np.linspace(0.0, 1.0, 10), GossipConfig(rng=1))
    >>> bool(np.allclose(out.estimates, 0.5, atol=1e-3))  # the global mean
    True
    """
    if isinstance(trust, (list, tuple)):
        values, weights, variant_extras = _stacked_channel_state(
            graph,
            trust,
            variant,
            target=target,
            targets=targets,
            convention=convention,
            designated_node=designated_node,
        )
        num_channels = len(trust)
        if num_channels > 1:
            config = config if config is not None else GossipConfig()
            if config.num_channels == 1:
                config = dataclasses.replace(config, num_channels=num_channels)
            elif config.num_channels != num_channels:
                raise ValueError(
                    f"config.num_channels ({config.num_channels}) does not match "
                    f"the {num_channels} trust channels passed"
                )
    else:
        values, weights, variant_extras = _initial_state(
            graph,
            trust,
            variant,
            target=target,
            targets=targets,
            convention=convention,
            designated_node=designated_node,
        )
    if variant_extras is not None:
        if extras:
            raise ValueError(
                "gclr variants reserve the extras channel for their observer count"
            )
        extras = variant_extras
    return run_backend(
        graph, values, weights, extras=extras, config=config, backend=backend
    )
