"""Absolute Trust baseline (Awasthi & Singh, arXiv:1601.01419).

Absolute Trust computes each peer's global trust as the fixpoint of a
*self-weighted* aggregation: the opinions about peer ``j`` are averaged
with weights equal to the current global trust of the evaluators
themselves,

``t_j = sum_{i in R_j} T_ij * t_i / sum_{i in R_j} t_i``

where ``R_j`` is the set of peers holding a direct opinion about ``j``.
Unlike EigenTrust there is no pre-trusted set and no normalisation to a
probability distribution — the map is scale-free (homogeneous of degree
zero in ``t``), and arXiv:1603.00589 shows the iteration converges to a
unique positive fixpoint on connected evaluation structures. That
uniqueness is what makes the seeded-rng path safe: any positive starting
vector reaches the same limit, so a random initial vector only perturbs
the trajectory, never the answer.

The convergence guard follows 1603.00589's analysis: plain fixpoint
iteration can slosh on near-bipartite evaluation structures, so when the
iterate's movement grows between consecutive iterations the solver
switches to damped iteration (averaging with the previous iterate, which
preserves the fixpoint) for the remainder of the run, and the iteration
count is always bounded by ``max_iterations``.

Peers nobody has evaluated keep trust ``0.0`` — the library-wide
zero-initial-trust newcomer convention
(:mod:`repro.trust.newcomer_policy`). Columns whose evaluators all sit
at zero trust fall back to the plain observer mean for that step (the
bootstrap step of the iteration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AbsoluteTrustResult:
    """Fixpoint solve outcome: the vector plus its convergence record."""

    values: np.ndarray
    iterations: int
    converged: bool
    damped: bool


def absolute_trust_fixpoint(
    trust: TrustMatrix,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
    rng: RngLike = None,
    initial: "np.ndarray | None" = None,
) -> AbsoluteTrustResult:
    """Solve the Absolute Trust fixpoint; return vector + iteration record.

    Parameters
    ----------
    trust:
        Local trust matrix (``T_ij`` = ``i``'s opinion of ``j``).
    max_iterations:
        Hard bound on fixpoint iterations (the 1603.00589 guard).
    tolerance:
        L-infinity movement below which the fixpoint is declared
        reached.
    rng:
        Seeds the positive random starting vector, routed through
        :func:`repro.utils.rng.as_generator`. ``None`` starts from the
        all-ones vector (deterministic). The fixpoint is unique, so the
        seed affects the trajectory only — pinned by
        ``tests/test_algorithms.py``.
    initial:
        Explicit starting vector (overrides ``rng``); must be positive.

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 1.0); t.set(2, 1, 0.8); t.set(1, 0, 0.4); t.set(1, 2, 0.4)
    >>> result = absolute_trust_fixpoint(t)
    >>> bool(result.converged)
    True
    >>> bool(result.values[1] > result.values[0])
    True
    """
    check_positive(tolerance, "tolerance")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    n = trust.num_nodes
    dense = trust.to_dense()
    mask = trust.observation_mask()
    counts = mask.sum(axis=0)
    observed = counts > 0
    # Plain observer mean: the bootstrap estimate for columns whose
    # evaluators currently carry zero trust mass.
    plain = np.where(observed, dense.sum(axis=0) / np.maximum(counts, 1), 0.0)

    if initial is not None:
        current = np.asarray(initial, dtype=np.float64).copy()
        if current.shape != (n,):
            raise ValueError(f"initial must have shape ({n},), got {current.shape}")
        if current.min() <= 0:
            raise ValueError("initial trust values must be positive")
    elif rng is not None:
        # Positive start bounded away from 0, so no evaluator begins
        # voiceless purely by draw.
        current = 0.5 + 0.5 * as_generator(rng).random(n)
    else:
        current = np.ones(n, dtype=np.float64)
    current = np.where(observed, current, 0.0)

    def step(t: np.ndarray) -> np.ndarray:
        weights = np.where(mask, t[:, None], 0.0)
        denom = weights.sum(axis=0)
        numer = (dense * weights).sum(axis=0)
        out = np.where(denom > 0, numer / np.where(denom == 0, 1.0, denom), plain)
        return np.where(observed, out, 0.0)

    converged = False
    damped = False
    iterations = 0
    previous_movement = np.inf
    for iterations in range(1, max_iterations + 1):
        updated = step(current)
        if damped:
            updated = 0.5 * (current + updated)
        movement = float(np.abs(updated - current).max()) if n else 0.0
        if movement <= tolerance:
            current = updated
            converged = True
            break
        if movement > previous_movement and not damped:
            # Movement grew — the oscillation signature 1603.00589's
            # analysis guards against. Damping halves the step while
            # preserving the fixpoint.
            damped = True
        previous_movement = movement
        current = updated
    return AbsoluteTrustResult(
        values=current, iterations=iterations, converged=converged, damped=damped
    )


def absolute_trust(
    trust: TrustMatrix,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
    rng: RngLike = None,
) -> np.ndarray:
    """The Absolute Trust global vector (thin shim over the fixpoint solve).

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 1.0); t.set(2, 1, 0.8); t.set(1, 0, 0.4); t.set(1, 2, 0.4)
    >>> scores = absolute_trust(t)
    >>> int(np.argmax(scores))
    1
    """
    return absolute_trust_fixpoint(
        trust, max_iterations=max_iterations, tolerance=tolerance, rng=rng
    ).values
