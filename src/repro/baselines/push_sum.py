"""Normal push gossip (push-sum) baseline.

Kempe, Dobra & Gehrke's push-sum is differential gossip with ``k_i = 1``
for every node: each step, every node halves its pair and pushes one
half to a single uniformly random neighbour. On complete graphs it
converges in ``O(log N + log 1/xi)``; on PA graphs it is exactly the
algorithm Chierichetti et al. proved *slow* — which is the gap
differential push closes, and what Figure 3 measures.

Implemented as a thin configuration of the shared engine so that every
other knob (convergence protocol, churn, metrics) is identical between
baseline and contribution — differences in results are attributable to
the push rule alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.differential import fixed_push_counts
from repro.core.results import GossipOutcome
from repro.core.vector_engine import VectorGossipEngine
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def normal_push_engine(
    graph: Graph,
    *,
    loss_model: Optional[PacketLossModel] = None,
    rng: RngLike = None,
) -> VectorGossipEngine:
    """A :class:`VectorGossipEngine` configured as normal push (``k = 1``).

    ``rng`` accepts any ``RngLike`` (``None``, int seed, ``Generator``,
    ``SeedSequence``) and is routed through
    :func:`repro.utils.rng.as_generator` here, so a ``SeedSequence``
    behaves identically to every other entry point.
    """
    return VectorGossipEngine(
        graph,
        push_counts=fixed_push_counts(graph, 1),
        loss_model=loss_model,
        rng=as_generator(rng),
    )


def push_sum_average(
    graph: Graph,
    values: np.ndarray,
    *,
    xi: float = 1e-4,
    rng: RngLike = None,
    loss_model: Optional[PacketLossModel] = None,
    max_steps: int = 10_000,
    patience: int = 3,
    backend: str = "auto",
) -> GossipOutcome:
    """Estimate the average of ``values`` with classic push-sum.

    Every node starts with ``(value_i, 1)`` — the uniform-gossip setting
    of the paper's Section 5.1 analysis — and pushes to one random
    neighbour per step until the stop protocol fires. Runs through the
    unified backend layer (``k = 1`` in the shared
    :class:`repro.core.backend.GossipConfig`), so the baseline scales
    onto the sparse engine like everything else.

    Parameters
    ----------
    graph:
        Topology.
    values:
        Per-node numbers to average, shape ``(N,)``.
    xi, rng, loss_model, max_steps, patience:
        As in :meth:`repro.core.vector_engine.VectorGossipEngine.run`.
    backend:
        Registered gossip backend name; the default ``"auto"`` follows
        :func:`repro.core.backend.choose_backend_name`, so large
        Figure-3 baselines land on the sparse/sharded engines instead
        of silently running every 100k+-node round through the dense
        engine. Pass an explicit name to pin one.

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> import numpy as np
    >>> g = preferential_attachment_graph(50, m=2, rng=0)
    >>> out = push_sum_average(g, np.arange(50.0), xi=1e-6, rng=1)
    >>> bool(np.allclose(out.estimates, 24.5, atol=0.05))
    True
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (graph.num_nodes,):
        raise ValueError(f"values must have shape ({graph.num_nodes},), got {values.shape}")
    return run_backend(
        graph,
        values,
        np.ones(graph.num_nodes),
        config=GossipConfig(
            xi=xi,
            k=1,
            loss_model=loss_model,
            rng=rng,
            max_steps=max_steps,
            patience=patience,
        ),
        backend=backend,
    )
