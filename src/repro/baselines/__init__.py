"""Comparison baselines.

The paper positions differential gossip against:

- **normal push gossip** (push-sum, Kempe et al. FOCS'03) — what Fig. 3
  and Table 2 compare step counts / message overhead with;
- **push-pull gossip** — what Theorem 5.1's discussion says one would
  need on PA graphs if hubs could be identified;
- **GossipTrust** (Zhou, Hwang & Cai, TKDE'08) — the prior gossip-based
  reputation aggregator whose *global* (uncalibrated) estimates the
  collusion analysis (eqs. 8–12) models;
- **EigenTrust** (Kamvar et al., WWW'03) — the classic global reputation
  fixpoint, included as a related-work comparator;
- **Absolute Trust** (Awasthi & Singh, arXiv:1601.01419) — the
  self-weighted fixpoint without pre-trusted peers, with the
  convergence guard of arXiv:1603.00589;
- **flooding** — the deterministic full-dissemination strawman for
  message-overhead comparisons.

Every baseline is also wrapped as a registered
:mod:`repro.algorithms` adapter, so it plugs into the attack engine,
the scenario layer and the tournament leaderboard through one shared
protocol.
"""

from repro.baselines.absolute_trust import (
    AbsoluteTrustResult,
    absolute_trust,
    absolute_trust_fixpoint,
)
from repro.baselines.eigentrust import EigenTrustResult, eigentrust, eigentrust_fixpoint
from repro.baselines.flooding import FloodResult, flood_spread
from repro.baselines.gossip_trust import (
    GossipTrustResult,
    gossip_trust_fixpoint,
    gossip_trust_global,
    unweighted_global_estimate,
)
from repro.baselines.push_pull import push_pull_average
from repro.baselines.push_sum import normal_push_engine, push_sum_average

__all__ = [
    "push_sum_average",
    "normal_push_engine",
    "push_pull_average",
    "gossip_trust_global",
    "gossip_trust_fixpoint",
    "GossipTrustResult",
    "unweighted_global_estimate",
    "eigentrust",
    "eigentrust_fixpoint",
    "EigenTrustResult",
    "absolute_trust",
    "absolute_trust_fixpoint",
    "AbsoluteTrustResult",
    "flood_spread",
    "FloodResult",
]
