"""Deterministic flooding baseline for dissemination overhead.

The cheapest *deterministic* way to spread a piece of information is to
have every node forward anything new to all neighbours. It finishes in
diameter-many steps but costs ``O(E)`` messages *per information item* —
the overhead gossip avoids. :func:`flood_spread` measures both numbers
so Table-2-style comparisons can quote the deterministic strawman.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

import numpy as np

from repro.network.graph import Graph


@dataclass(frozen=True)
class FloodResult:
    """Outcome of a flooding round.

    Attributes
    ----------
    steps:
        Rounds until no node had anything new to forward.
    total_messages:
        Messages sent (every informed node forwards once to each
        neighbour the round after it first learns the item).
    reached:
        Number of nodes that ended up informed.
    """

    steps: int
    total_messages: int
    reached: int

    @property
    def messages_per_node(self) -> float:
        """Messages divided by nodes reached."""
        return self.total_messages / self.reached if self.reached else 0.0


def flood_spread(graph: Graph, sources: Iterable[int]) -> FloodResult:
    """Flood one information item from ``sources`` through ``graph``.

    Parameters
    ----------
    graph:
        Topology.
    sources:
        Initially informed nodes.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> result = flood_spread(example_network(), [0])
    >>> result.reached
    10
    """
    informed = np.zeros(graph.num_nodes, dtype=bool)
    frontier: List[int] = []
    for source in sources:
        if not 0 <= source < graph.num_nodes:
            raise ValueError(f"source {source} outside 0..{graph.num_nodes - 1}")
        if not informed[source]:
            informed[source] = True
            frontier.append(source)
    if not frontier:
        raise ValueError("at least one source is required")

    steps = 0
    total_messages = 0
    while frontier:
        next_frontier: Set[int] = set()
        for node in frontier:
            neighbors = graph.neighbors(node)
            total_messages += int(neighbors.size)
            for neighbor in neighbors:
                if not informed[neighbor]:
                    informed[neighbor] = True
                    next_frontier.add(int(neighbor))
        frontier = sorted(next_frontier)
        steps += 1
    return FloodResult(steps=steps, total_messages=total_messages, reached=int(informed.sum()))
