"""GossipTrust-style global reputation aggregation (ref. [17]).

Zhou, Hwang & Cai's GossipTrust computes one *global* reputation per
node: a reputation-weighted average of local trust scores, iterated to a
fixpoint (each aggregation cycle's sums are obtained by push gossip; the
fixpoint structure is what matters for the collusion comparison, so this
reference implementation computes the cycle sums exactly).

``R^{(c+1)}_j = sum_i R^{(c)}_i * t_ij / sum_i R^{(c)}_i``

Every peer ends up using the *same* value for a given node — precisely
the assumption the paper criticises, and what makes the scheme
collusion-prone: a colluding clique's mutual praise enters everyone's
estimate at full weight. :func:`unweighted_global_estimate` is the
single-cycle, weightless variant that the paper's collusion analysis
(eqs. 8–12) models as the "old" method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trust.matrix import TrustMatrix
from repro.utils.validation import check_positive


def unweighted_global_estimate(trust: TrustMatrix, *, over_all_nodes: bool = True) -> np.ndarray:
    """Plain global average of feedback per target — eqs. 8–10's estimator.

    Parameters
    ----------
    trust:
        Local trust matrix (possibly already poisoned by colluders).
    over_all_nodes:
        Divide by ``N`` (eq. 8) rather than by the observer count.

    Returns
    -------
    numpy.ndarray
        Length-``N`` vector of global reputation estimates.
    """
    n = trust.num_nodes
    out = np.zeros(n, dtype=np.float64)
    for target in range(n):
        if over_all_nodes:
            out[target] = trust.column_mean_over_all(target)
        else:
            out[target] = trust.column_mean_over_observers(target)
    return out


def gossip_trust_global(
    trust: TrustMatrix,
    *,
    max_cycles: int = 200,
    tolerance: float = 1e-10,
    initial: Optional[np.ndarray] = None,
    damping: float = 0.5,
) -> np.ndarray:
    """GossipTrust's reputation-weighted global fixpoint.

    Parameters
    ----------
    trust:
        Local trust matrix.
    max_cycles:
        Upper bound on aggregation cycles.
    tolerance:
        L1 movement below which the fixpoint is declared reached.
    initial:
        Starting reputation vector (default: uniform ``1/N``).
    damping:
        Mixing weight of the previous iterate, in ``[0, 1)``. Plain
        power iteration (``damping = 0``) oscillates forever on
        bipartite-like trust structures; averaging with the previous
        iterate kills the negative eigenvalue's oscillation while
        preserving the fixpoint.

    Returns
    -------
    numpy.ndarray
        Global reputation vector, normalised to sum to 1 (GossipTrust
        reports reputations as a ranking distribution).

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 1.0); t.set(2, 1, 1.0); t.set(1, 0, 0.5)
    >>> r = gossip_trust_global(t)
    >>> bool(r[1] > r[0] > r[2])
    True
    """
    check_positive(tolerance, "tolerance")
    if max_cycles < 1:
        raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must lie in [0, 1), got {damping!r}")
    n = trust.num_nodes
    dense = trust.to_dense()
    if initial is None:
        reputation = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        reputation = np.asarray(initial, dtype=np.float64).copy()
        if reputation.shape != (n,):
            raise ValueError(f"initial must have shape ({n},), got {reputation.shape}")
        if reputation.min() < 0:
            raise ValueError("initial reputations must be non-negative")
        total = reputation.sum()
        if total <= 0:
            raise ValueError("initial reputations must not be all zero")
        reputation /= total

    for _ in range(max_cycles):
        weighted = reputation @ dense  # sum_i R_i * t_ij
        total = weighted.sum()
        if total <= 0:
            # Nobody trusts anybody: fall back to uniform, the fixpoint of
            # an empty feedback matrix.
            updated = np.full(n, 1.0 / n)
        else:
            updated = weighted / total
        updated = damping * reputation + (1.0 - damping) * updated
        if np.abs(updated - reputation).sum() <= tolerance:
            reputation = updated
            break
        reputation = updated
    return reputation
