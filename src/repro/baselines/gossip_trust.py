"""GossipTrust-style global reputation aggregation (ref. [17]).

Zhou, Hwang & Cai's GossipTrust computes one *global* reputation per
node: a reputation-weighted average of local trust scores, iterated to a
fixpoint (each aggregation cycle's sums are obtained by push gossip; the
fixpoint structure is what matters for the collusion comparison, so this
reference implementation computes the cycle sums exactly).

``R^{(c+1)}_j = sum_i R^{(c)}_i * t_ij / sum_i R^{(c)}_i``

Every peer ends up using the *same* value for a given node — precisely
the assumption the paper criticises, and what makes the scheme
collusion-prone: a colluding clique's mutual praise enters everyone's
estimate at full weight. :func:`unweighted_global_estimate` is the
single-cycle, weightless variant that the paper's collusion analysis
(eqs. 8–12) models as the "old" method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def unweighted_global_estimate(trust: TrustMatrix, *, over_all_nodes: bool = True) -> np.ndarray:
    """Plain global average of feedback per target — eqs. 8–10's estimator.

    Parameters
    ----------
    trust:
        Local trust matrix (possibly already poisoned by colluders).
    over_all_nodes:
        Divide by ``N`` (eq. 8) rather than by the observer count.

    Returns
    -------
    numpy.ndarray
        Length-``N`` vector of global reputation estimates.
    """
    n = trust.num_nodes
    out = np.zeros(n, dtype=np.float64)
    for target in range(n):
        if over_all_nodes:
            out[target] = trust.column_mean_over_all(target)
        else:
            out[target] = trust.column_mean_over_observers(target)
    return out


@dataclass(frozen=True)
class GossipTrustResult:
    """Fixpoint solve outcome: the vector plus its convergence record."""

    values: np.ndarray
    cycles: int
    converged: bool


def gossip_trust_fixpoint(
    trust: TrustMatrix,
    *,
    max_cycles: int = 200,
    tolerance: float = 1e-10,
    initial: Optional[np.ndarray] = None,
    damping: float = 0.5,
    rng: RngLike = None,
) -> GossipTrustResult:
    """GossipTrust's fixpoint solve with its full convergence record.

    Same iteration as :func:`gossip_trust_global` (which remains the
    thin shim over this solver) but returns the cycle count and the
    converged flag — what the tournament leaderboard charges GossipTrust
    per aggregation cycle. ``rng`` (routed through
    :func:`repro.utils.rng.as_generator`) seeds a random positive
    starting vector; the damped power iteration's fixpoint is the
    principal eigenvector, so the seed perturbs the trajectory, not the
    limit.
    """
    check_positive(tolerance, "tolerance")
    if max_cycles < 1:
        raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must lie in [0, 1), got {damping!r}")
    n = trust.num_nodes
    dense = trust.to_dense()
    if initial is None and rng is not None:
        # Seeded-rng path: positive start bounded away from 0 so no
        # peer begins voiceless purely by draw; normalised like any
        # explicit initial vector.
        start = 0.5 + 0.5 * as_generator(rng).random(n)
        reputation = start / start.sum()
    elif initial is None:
        reputation = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        reputation = np.asarray(initial, dtype=np.float64).copy()
        if reputation.shape != (n,):
            raise ValueError(f"initial must have shape ({n},), got {reputation.shape}")
        if reputation.min() < 0:
            raise ValueError("initial reputations must be non-negative")
        total = reputation.sum()
        if total <= 0:
            raise ValueError("initial reputations must not be all zero")
        reputation /= total

    converged = False
    cycles = 0
    for cycles in range(1, max_cycles + 1):
        weighted = reputation @ dense  # sum_i R_i * t_ij
        total = weighted.sum()
        if total <= 0:
            # Nobody trusts anybody: fall back to uniform, the fixpoint of
            # an empty feedback matrix.
            updated = np.full(n, 1.0 / n)
        else:
            updated = weighted / total
        updated = damping * reputation + (1.0 - damping) * updated
        if np.abs(updated - reputation).sum() <= tolerance:
            reputation = updated
            converged = True
            break
        reputation = updated
    return GossipTrustResult(values=reputation, cycles=cycles, converged=converged)


def gossip_trust_global(
    trust: TrustMatrix,
    *,
    max_cycles: int = 200,
    tolerance: float = 1e-10,
    initial: Optional[np.ndarray] = None,
    damping: float = 0.5,
    rng: RngLike = None,
) -> np.ndarray:
    """GossipTrust's reputation-weighted global fixpoint.

    Parameters
    ----------
    trust:
        Local trust matrix.
    max_cycles:
        Upper bound on aggregation cycles.
    tolerance:
        L1 movement below which the fixpoint is declared reached.
    initial:
        Starting reputation vector (default: uniform ``1/N``).
    damping:
        Mixing weight of the previous iterate, in ``[0, 1)``. Plain
        power iteration (``damping = 0``) oscillates forever on
        bipartite-like trust structures; averaging with the previous
        iterate kills the negative eigenvalue's oscillation while
        preserving the fixpoint.
    rng:
        Optional seed for a random positive starting vector (routed
        through :func:`repro.utils.rng.as_generator`; any
        ``RngLike`` — ``None``, int, ``Generator``, ``SeedSequence``).
        Ignored when ``initial`` is given. The fixpoint is
        seed-independent; the trajectory is not.

    Returns
    -------
    numpy.ndarray
        Global reputation vector, normalised to sum to 1 (GossipTrust
        reports reputations as a ranking distribution).

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 1.0); t.set(2, 1, 1.0); t.set(1, 0, 0.5)
    >>> r = gossip_trust_global(t)
    >>> bool(r[1] > r[0] > r[2])
    True
    """
    return gossip_trust_fixpoint(
        trust,
        max_cycles=max_cycles,
        tolerance=tolerance,
        initial=initial,
        damping=damping,
        rng=rng,
    ).values
