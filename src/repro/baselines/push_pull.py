"""Push-pull averaging gossip baseline.

Chierichetti et al. showed push-pull spreads rumours on PA graphs in
``O((log N)^2)`` — the bound differential push matches *without*
pulling. This module implements the averaging form (randomised pairwise
averaging à la Boyd et al.): each step every node contacts one random
neighbour, and the contacted pair replaces both states with their
midpoint. Mass is conserved because every exchange is symmetric.

Pull is more expensive than push in practice (a pull is a request *and*
a response — two messages), which is the paper's stated reason to avoid
it; :func:`push_pull_average` therefore counts two messages per contact
so overhead comparisons are fair.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceProtocol, deviation_vector
from repro.core.errors import ConvergenceError
from repro.core.results import GossipOutcome
from repro.core.state import ratios
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def push_pull_average(
    graph: Graph,
    values: np.ndarray,
    *,
    xi: float = 1e-4,
    rng: RngLike = None,
    max_steps: int = 10_000,
    patience: int = 3,
) -> GossipOutcome:
    """Estimate the average of ``values`` by randomised pairwise averaging.

    Each step, every node picks one uniformly random neighbour; the two
    average their ``(value, weight)`` pairs. Contacts are processed
    sequentially within a step (asynchronous-style), so a node touched
    twice in one step simply averages twice — mass conservation holds
    regardless.

    Parameters
    ----------
    graph:
        Topology.
    values:
        Per-node numbers to average: shape ``(N,)`` for one component,
        or ``(N, d)`` to average ``d`` components in one pass (every
        contact exchanges the whole state vector, so the message count
        is per *contact*, not per component).
    xi, rng, max_steps, patience:
        As in the shared engine contract (``rng`` accepts any
        ``RngLike``, routed through
        :func:`repro.utils.rng.as_generator`).

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> import numpy as np
    >>> g = preferential_attachment_graph(40, m=2, rng=0)
    >>> out = push_pull_average(g, np.arange(40.0), xi=1e-6, rng=1)
    >>> bool(np.allclose(out.estimates, 19.5, atol=0.05))
    True
    """
    check_positive(xi, "xi")
    values = np.asarray(values, dtype=np.float64)
    n = graph.num_nodes
    if values.ndim not in (1, 2) or values.shape[0] != n:
        raise ValueError(f"values must have shape ({n},) or ({n}, d), got {values.shape}")
    columns = values.reshape(n, -1)
    d = columns.shape[1]
    generator = as_generator(rng)

    value = columns.astype(np.float64).copy()
    weight = np.ones(n, dtype=np.float64)
    protocol = ConvergenceProtocol(graph, xi, num_components=d, patience=patience)

    def current_ratios() -> np.ndarray:
        return ratios(value, np.broadcast_to(weight[:, None], value.shape))

    previous = current_ratios()
    degrees = graph.degrees
    indptr, indices = graph.indptr, graph.indices

    push_messages = 0
    protocol_messages = 0
    active_node_steps = 0
    steps = 0
    while not protocol.all_stopped:
        if steps >= max_steps:
            raise ConvergenceError(steps, protocol.num_unconverged)
        active = np.flatnonzero(~protocol.stopped & (degrees > 0))
        active_node_steps += int(active.size)
        heard_external = np.zeros(n, dtype=bool)
        for node in active:
            neighbor = int(indices[indptr[node] + int(generator.integers(degrees[node]))])
            mid_value = 0.5 * (value[node] + value[neighbor])
            mid_weight = 0.5 * (weight[node] + weight[neighbor])
            value[node] = value[neighbor] = mid_value
            weight[node] = weight[neighbor] = mid_weight
            heard_external[node] = heard_external[neighbor] = True
            push_messages += 2  # request + response (per contact, any d)
        current = current_ratios()
        newly = protocol.observe(
            deviation_vector(current, previous), heard_external, weight != 0.0
        )
        if newly.size:
            protocol_messages += int(degrees[newly].sum())
        previous = current
        steps += 1

    return GossipOutcome(
        values=value,
        weights=np.repeat(weight[:, None], d, axis=1),
        extras={},
        steps=steps,
        push_messages=push_messages,
        protocol_messages=protocol_messages,
        active_node_steps=active_node_steps,
        converged=protocol.converged.copy(),
        ratio_history=None,
    )
