"""EigenTrust baseline (Kamvar, Schlosser & Garcia-Molina, WWW'03).

EigenTrust computes global trust as the principal left eigenvector of
the row-normalised local trust matrix ``C``, damped toward a
distribution ``p`` over *pre-trusted peers*:

``t^{(k+1)} = (1 - alpha) * C^T t^{(k)} + alpha * p``

The paper's related-work section criticises exactly this dependence on
pre-trusted peers ("scalable to a limited extent"); the implementation
is here so experiments can quantify that comparison — e.g. how the
estimate degrades when pre-trusted peers are themselves colluders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_probability


def _row_normalise(dense: np.ndarray, pretrusted_distribution: np.ndarray) -> np.ndarray:
    """EigenTrust's ``c_ij = max(t_ij, 0) / sum_j max(t_ij, 0)``.

    Rows with no positive opinion fall back to the pre-trusted
    distribution, as in the original paper.
    """
    clipped = np.clip(dense, 0.0, None)
    row_sums = clipped.sum(axis=1, keepdims=True)
    out = np.where(row_sums > 0, clipped / np.where(row_sums == 0, 1.0, row_sums), 0.0)
    empty_rows = (row_sums.reshape(-1) == 0)
    if empty_rows.any():
        out[empty_rows] = pretrusted_distribution
    return out


@dataclass(frozen=True)
class EigenTrustResult:
    """Fixpoint solve outcome: the vector plus its convergence record."""

    values: np.ndarray
    iterations: int
    converged: bool


def eigentrust_fixpoint(
    trust: TrustMatrix,
    *,
    pretrusted: Optional[Sequence[int]] = None,
    alpha: float = 0.1,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
    rng: RngLike = None,
) -> EigenTrustResult:
    """EigenTrust's power iteration with its full convergence record.

    Same iteration as :func:`eigentrust` (which remains the thin shim
    over this solver) but returns the iteration count and the converged
    flag. ``rng`` (routed through :func:`repro.utils.rng.as_generator`)
    seeds a random starting distribution instead of ``p``; the damped
    map is an L1 contraction with factor ``1 - alpha``, so its fixpoint
    is unique and the seed perturbs only the trajectory.
    """
    check_probability(alpha, "alpha")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    n = trust.num_nodes
    if pretrusted is None:
        pretrusted = [0]
    pretrusted = list(pretrusted)
    if not pretrusted:
        raise ValueError("pretrusted must contain at least one node id")
    if any(not 0 <= p < n for p in pretrusted):
        raise ValueError(f"pretrusted ids must lie in 0..{n - 1}, got {pretrusted}")

    p = np.zeros(n, dtype=np.float64)
    p[pretrusted] = 1.0 / len(pretrusted)
    c = _row_normalise(trust.to_dense(), p)

    if rng is not None:
        # Seeded-rng path: a random positive starting distribution.
        start = 0.5 + 0.5 * as_generator(rng).random(n)
        scores = start / start.sum()
    else:
        scores = p.copy()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        updated = (1.0 - alpha) * (c.T @ scores) + alpha * p
        if np.abs(updated - scores).sum() <= tolerance:
            scores = updated
            converged = True
            break
        scores = updated
    total = scores.sum()
    values = scores / total if total > 0 else scores
    return EigenTrustResult(values=values, iterations=iterations, converged=converged)


def eigentrust(
    trust: TrustMatrix,
    *,
    pretrusted: Optional[Sequence[int]] = None,
    alpha: float = 0.1,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
    rng: RngLike = None,
) -> np.ndarray:
    """Global EigenTrust vector for the given local trust matrix.

    Parameters
    ----------
    trust:
        Local trust matrix.
    pretrusted:
        Ids of pre-trusted peers. Defaults to node 0 — EigenTrust
        *requires* a non-empty pre-trusted set for convergence
        guarantees, which is precisely the deployment burden the paper
        criticises.
    alpha:
        Damping weight toward the pre-trusted distribution, in [0, 1].
    max_iterations, tolerance:
        Power-iteration controls.
    rng:
        Optional seed for a random starting distribution (any
        ``RngLike``; routed through
        :func:`repro.utils.rng.as_generator`). The damped fixpoint is
        unique, so the seed never changes the answer beyond
        ``tolerance``.

    Returns
    -------
    numpy.ndarray
        Global trust distribution (non-negative, sums to 1).

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 1.0); t.set(2, 1, 1.0); t.set(1, 2, 0.2)
    >>> scores = eigentrust(t, pretrusted=[0])
    >>> int(np.argmax(scores))
    1
    """
    return eigentrust_fixpoint(
        trust,
        pretrusted=pretrusted,
        alpha=alpha,
        max_iterations=max_iterations,
        tolerance=tolerance,
        rng=rng,
    ).values
