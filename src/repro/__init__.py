"""repro — Differential Gossip Trust for peer-to-peer networks.

A complete, self-contained reproduction of Gupta & Singh, *"Reputation
Aggregation in Peer-to-Peer Network Using Differential Gossip
Algorithm"*: the differential push gossip primitive, all four
aggregation variants, the power-law network substrate, trust estimation,
a composable adversary engine (collusion, whitewashing, slandering,
on–off oscillation, sybil floods — :mod:`repro.attacks`), churn,
comparison baselines behind a first-class algorithm registry
(:mod:`repro.algorithms` — see ``docs/tournament.md``), the full
experiment harness that regenerates
every table and figure of the paper's evaluation, and a long-running
reputation service with streaming ingest and versioned snapshots
(:mod:`repro.service` — see ``docs/service.md``).

Quickstart
----------
>>> from repro import (
...     preferential_attachment_graph, random_trust_matrix, aggregate_vector_gclr,
... )
>>> graph = preferential_attachment_graph(200, m=2, rng=1)
>>> trust = random_trust_matrix(graph, rng=2)
>>> result = aggregate_vector_gclr(graph, trust, targets=[0, 5, 9], rng=3)
>>> result.reputations.shape
(200, 3)
"""

from repro.core import (
    ConvergenceError,
    GossipConfig,
    GossipOutcome,
    MessageLevelGossip,
    ShardedGossipEngine,
    SparseGossipEngine,
    VectorGossipEngine,
    WeightParams,
    aggregate_single_gclr,
    aggregate_single_global,
    aggregate_vector_gclr,
    aggregate_vector_global,
    available_backends,
    get_backend,
    push_counts,
    register_backend,
)
from repro.algorithms import (
    AlgorithmOutcome,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.attacks import (
    AttackModel,
    attack_impact,
    available_attacks,
    make_attack,
    register_attack,
)
from repro.facade import aggregate
from repro.network import (
    Graph,
    MutableOverlay,
    PacketLossModel,
    example_network,
    preferential_attachment_graph,
)
from repro.runtime import ChurnTrace, DynamicRunResult, run_dynamic
from repro.service import (
    BackpressureError,
    ReportQueue,
    ReputationService,
    ReputationSnapshot,
    ServiceLoop,
    TrustReport,
    replay_trace,
)
from repro.trust import ReputationTable, TrustMatrix, random_trust_matrix

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "MutableOverlay",
    "ChurnTrace",
    "DynamicRunResult",
    "run_dynamic",
    "PacketLossModel",
    "preferential_attachment_graph",
    "example_network",
    "TrustMatrix",
    "random_trust_matrix",
    "ReputationTable",
    "WeightParams",
    "aggregate",
    "AlgorithmOutcome",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "AttackModel",
    "attack_impact",
    "available_attacks",
    "make_attack",
    "register_attack",
    "GossipConfig",
    "available_backends",
    "get_backend",
    "register_backend",
    "aggregate_single_global",
    "aggregate_single_gclr",
    "aggregate_vector_global",
    "aggregate_vector_gclr",
    "VectorGossipEngine",
    "SparseGossipEngine",
    "ShardedGossipEngine",
    "MessageLevelGossip",
    "GossipOutcome",
    "ConvergenceError",
    "push_counts",
    "BackpressureError",
    "ReportQueue",
    "ReputationService",
    "ReputationSnapshot",
    "ServiceLoop",
    "TrustReport",
    "replay_trace",
    "__version__",
]
