"""The paper's Figure-2 example network (10 nodes).

Figure 2 is a drawing without an edge list, but Table 1 publishes the
information that actually drives the algorithm: the degree sequence
``4, 4, 7, 3, 3, 2, 2, 2, 3, 2`` and the resulting differential push
counts ``k = 1, 1, 3, 1, 1, 1, 1, 1, 1, 1``. The hand-constructed edge
list below realises *both* exactly:

- node 2 (0-indexed; paper's node 3) is the hub with degree 7 and its
  seven neighbours have mean degree 17/7 ≈ 2.43, so
  ``k = round(7 / 2.43) = 3``;
- every other node's degree/mean-neighbour-degree ratio rounds to 1 (or
  is below 1, which the paper also maps to ``k = 1``).

``tests/test_topology_example.py`` asserts the degree sequence and the k
values against the published Table 1 header row.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.network.graph import Graph

#: Paper Table 1, "degree" row (paper nodes 1..10 -> indices 0..9).
EXAMPLE_DEGREES: Tuple[int, ...] = (4, 4, 7, 3, 3, 2, 2, 2, 3, 2)

#: Paper Table 1, "k" row.
EXAMPLE_K_VALUES: Tuple[int, ...] = (1, 1, 3, 1, 1, 1, 1, 1, 1, 1)

#: Paper Table 1, "itr=1" row — the per-node values after the first gossip
#: iteration. We reuse them as the *initial* direct-trust observations in
#: the Table 1 experiment; their mean (~0.4498) is the value every node
#: must converge to.
EXAMPLE_INITIAL_VALUES: Tuple[float, ...] = (
    0.5653,
    0.3091,
    0.3629,
    0.4765,
    0.3080,
    0.6433,
    0.0668,
    0.6257,
    0.4386,
    0.7015,
)

# Edge list (0-indexed). Node 2 is the paper's hub "node 3".
_EXAMPLE_EDGES: List[Tuple[int, int]] = [
    # hub edges: node 2 <-> {3, 4, 5, 6, 7, 8, 9}
    (2, 3),
    (2, 4),
    (2, 5),
    (2, 6),
    (2, 7),
    (2, 8),
    (2, 9),
    # node 0 edges
    (0, 1),
    (0, 3),
    (0, 4),
    (0, 5),
    # node 1 edges
    (1, 6),
    (1, 7),
    (1, 8),
    # closing edges
    (3, 8),
    (4, 9),
]


def example_network() -> Graph:
    """Build the 10-node Figure-2 example network.

    Returns
    -------
    Graph
        Connected 10-node, 16-edge graph with degree sequence
        :data:`EXAMPLE_DEGREES` and differential push counts
        :data:`EXAMPLE_K_VALUES`.

    Examples
    --------
    >>> graph = example_network()
    >>> graph.num_nodes, graph.num_edges
    (10, 16)
    """
    return Graph(10, _EXAMPLE_EDGES)
