"""Deprecated home of :class:`PacketLossModel` — moved to
:mod:`repro.network.conditions`.

Per-push Bernoulli loss was never *churn* (no peer joins or leaves; the
overlay is frozen) — it is a network condition, and it now lives with
the other link models in :mod:`repro.network.conditions`. This module
re-exports the old names so existing imports keep working; new code
should import from the conditions module (or :mod:`repro.network`).

Examples
--------
>>> from repro.network.churn import PacketLossModel
>>> from repro.network.conditions import PacketLossModel as Moved
>>> PacketLossModel is Moved
True
"""

from __future__ import annotations

from repro.network.conditions import PacketLossModel, no_loss

__all__ = ["PacketLossModel", "no_loss"]
