"""Packet-loss / churn model with mass-conserving self-push.

P2P overlays run above TCP, so in the paper's model a push is only lost
when the receiving peer has *left* the network (churn). The sender then
gets no acknowledgement and — to keep the gossip mass conserved — pushes
the pair to itself instead (Section 5.3, Figure 4). A leaving node is
likewise assumed to hand its accumulated gossip pair to another node, so
the global sums of gossip value and gossip weight are invariants even
under churn.

:class:`PacketLossModel` encapsulates that behaviour: given the array of
push targets chosen in a step, it rewrites lost pushes back to the
sender. Both gossip engines consume it, so the policy is defined once.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_probability


class PacketLossModel:
    """Bernoulli per-push loss with mass-conserving self-redirect.

    Parameters
    ----------
    loss_probability:
        Probability that any single push is lost (its receiver has
        churned away). ``0.0`` disables the model.
    rng:
        Seed / generator for the loss draws.

    Examples
    --------
    >>> model = PacketLossModel(1.0, rng=0)  # every push lost
    >>> senders = np.array([0, 1, 2])
    >>> targets = np.array([1, 2, 0])
    >>> model.apply(senders, targets).tolist()  # all redirected to self
    [0, 1, 2]
    """

    __slots__ = ("_loss_probability", "_rng", "_lost_count", "_delivered_count")

    def __init__(self, loss_probability: float, *, rng: RngLike = None):
        check_probability(loss_probability, "loss_probability")
        self._loss_probability = float(loss_probability)
        self._rng = as_generator(rng)
        self._lost_count = 0
        self._delivered_count = 0

    @property
    def loss_probability(self) -> float:
        """Configured per-push loss probability."""
        return self._loss_probability

    @property
    def lost_count(self) -> int:
        """Total pushes redirected to self so far."""
        return self._lost_count

    @property
    def delivered_count(self) -> int:
        """Total pushes delivered to their intended target so far."""
        return self._delivered_count

    def apply(self, senders: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Rewrite lost pushes to their senders.

        Parameters
        ----------
        senders:
            Node id of the sender of each push.
        targets:
            Intended receiver of each push; same shape as ``senders``.

        Returns
        -------
        numpy.ndarray
            Effective receivers: ``targets`` where delivered, ``senders``
            where lost. The input arrays are not modified.
        """
        senders = np.asarray(senders)
        targets = np.asarray(targets)
        if senders.shape != targets.shape:
            raise ValueError(
                f"senders shape {senders.shape} != targets shape {targets.shape}"
            )
        if self._loss_probability == 0.0 or targets.size == 0:
            self._delivered_count += int(targets.size)
            return targets.copy()
        lost = self._rng.random(targets.shape) < self._loss_probability
        self._lost_count += int(lost.sum())
        self._delivered_count += int(targets.size - lost.sum())
        return np.where(lost, senders, targets)

    def reset_counters(self) -> None:
        """Zero the delivered/lost counters (configuration is kept)."""
        self._lost_count = 0
        self._delivered_count = 0


def no_loss() -> PacketLossModel:
    """A :class:`PacketLossModel` that never loses a push."""
    return PacketLossModel(0.0, rng=0)
