"""Preferential-attachment (PA) power-law graph generator.

Unstructured P2P overlays such as Gnutella exhibit power-law degree
distributions (``f(d) ~ d^-alpha`` with ``alpha ≈ 2.3``), and the paper
evaluates Differential Gossip Trust exclusively on graphs grown by the
PA process of Barabási–Albert / Bollobás et al.: a new node joins with
``m`` edges and attaches to existing node ``i`` with probability
proportional to ``deg(i)``.

The generator below uses the standard *repeated-nodes* trick: a flat
array that contains each node once per incident edge endpoint, so a
uniform draw from it realises degree-proportional sampling in O(1).
Targets for a joining node are drawn without replacement (the result is
a simple graph, as required by :class:`repro.network.graph.Graph`).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def preferential_attachment_graph(
    num_nodes: int,
    m: int = 2,
    *,
    rng: RngLike = None,
) -> Graph:
    """Grow a PA graph ``G^m_N`` with ``num_nodes`` nodes and ``m`` edges per join.

    Parameters
    ----------
    num_nodes:
        Final number of nodes ``N``; must satisfy ``N > m``.
    m:
        Edges added per joining node. The paper's analysis requires
        ``m >= 2`` (with ``m = 1`` the PA process yields a tree on which
        push-type gossip provably stalls); ``m = 1`` is still permitted
        here for baseline experiments, but the differential gossip
        guarantees only hold for ``m >= 2``.
    rng:
        Seed / generator for reproducibility.

    Examples
    --------
    >>> graph = preferential_attachment_graph(50, m=2, rng=7)
    >>> graph.num_nodes
    50
    >>> graph.num_edges == preferential_attachment_graph(50, m=2, rng=7).num_edges
    True

    Returns
    -------
    Graph
        A connected simple graph whose degree distribution follows a
        power law with exponent ``~3`` (the PA exponent; empirically
        Gnutella's 2.3 lies in the same heavy-tail regime).

    Notes
    -----
    The seed graph is a complete graph (a clique) on ``m + 1`` nodes, so every
    node has degree >= m and the graph is always connected — both
    assumptions the gossip engines rely on.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if num_nodes <= m:
        raise ValueError(f"num_nodes must exceed m ({m}), got {num_nodes}")
    generator = as_generator(rng)

    edges: List[tuple] = []
    # `repeated`: node u appears deg(u) times; uniform draws realise PA.
    repeated: List[int] = []

    seed_size = m + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.append((u, v))
            repeated.append(u)
            repeated.append(v)

    for new_node in range(seed_size, num_nodes):
        targets: Set[int] = set()
        # Draw distinct targets degree-proportionally.  Collisions are
        # re-drawn; with m << N the expected number of retries is tiny.
        while len(targets) < m:
            pick = repeated[int(generator.integers(len(repeated)))]
            targets.add(pick)
        for target in targets:
            edges.append((new_node, target))
            repeated.append(new_node)
            repeated.append(target)

    return Graph(num_nodes, edges)


def preferential_attachment_graph_fast(
    num_nodes: int,
    m: int = 2,
    *,
    rng: RngLike = None,
) -> Graph:
    """Million-node PA generator (Batagelj–Brandes edge-endpoint sampling).

    Grows the same process as :func:`preferential_attachment_graph` —
    clique seed on ``m + 1`` nodes, each joiner wiring ``m``
    degree-proportional edges — but materialises it through the
    Batagelj–Brandes construction: the target of a new edge is a
    uniform draw over the flat array of all previous edge *endpoints*,
    which realises degree-proportional attachment in O(1) without
    per-join set bookkeeping, and the final simple graph is assembled
    with vectorised dedup + :meth:`Graph.from_csr` instead of the
    per-edge Python path of ``Graph.__init__``. A 1M-node, ~8M-edge
    overlay builds in seconds instead of minutes.

    Differences from the exact generator (why both exist):

    - duplicate proposals are dropped afterwards rather than re-drawn,
      so a node's realised degree can fall slightly under ``m + its
      attracted edges`` (edge count is ``~m * num_nodes`` minus a
      sub-percent of collisions);
    - the random stream is consumed differently, so seeds are not
      interchangeable between the two generators.

    Every joiner's first edge targets a strictly earlier node, so the
    graph is always connected.

    Examples
    --------
    >>> g = preferential_attachment_graph_fast(2000, m=4, rng=3)
    >>> g.is_connected()
    True
    >>> 0.97 < g.num_edges / (4 * 2000) < 1.0
    True
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if num_nodes <= m:
        raise ValueError(f"num_nodes must exceed m ({m}), got {num_nodes}")
    generator = as_generator(rng)
    n = int(num_nodes)
    seed_size = m + 1
    seed_edges = m * (m + 1) // 2
    join_edges = m * (n - seed_size)
    total_edges = seed_edges + join_edges

    # Flat endpoint array: node u appears once per incident proposed
    # edge, so a uniform index draw is a degree-proportional node draw.
    endpoints = np.empty(2 * total_edges, dtype=np.int64)
    upper, lower = np.triu_indices(seed_size, k=1)
    endpoints[0 : 2 * seed_edges : 2] = upper
    endpoints[1 : 2 * seed_edges : 2] = lower
    uniforms = generator.random(join_edges)
    position = 2 * seed_edges
    index = 0
    for v in range(seed_size, n):
        for e in range(m):
            endpoints[position] = v
            # First edge of each joiner excludes its own fresh endpoint
            # (no self-loop), guaranteeing connectivity.
            bound = position if e == 0 else position + 1
            endpoints[position + 1] = endpoints[int(uniforms[index] * bound)]
            position += 2
            index += 1

    u, v = endpoints[0::2], endpoints[1::2]
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    keys = np.unique(lo * np.int64(n) + hi)
    lo, hi = keys // n, keys % n
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return Graph.from_csr(n, indptr, cols, validate=False)


def expected_num_edges(num_nodes: int, m: int) -> int:
    """Number of edges the generator produces for ``(num_nodes, m)``.

    The clique seed contributes ``m (m + 1) / 2`` edges and each of the
    remaining ``num_nodes - m - 1`` joins contributes ``m``.
    """
    if m < 1 or num_nodes <= m:
        raise ValueError("requires m >= 1 and num_nodes > m")
    return m * (m + 1) // 2 + m * (num_nodes - m - 1)


def degree_proportional_sample(graph: Graph, size: int, rng: RngLike = None) -> np.ndarray:
    """Sample ``size`` node ids with probability proportional to degree.

    Exposed for workload generators that need PA-consistent popularity
    (e.g. picking "power nodes" to seed content or collusion targets).
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    generator = as_generator(rng)
    degrees = graph.degrees.astype(np.float64)
    total = degrees.sum()
    if total <= 0:
        raise ValueError("graph has no edges; degree-proportional sampling undefined")
    return generator.choice(graph.num_nodes, size=size, p=degrees / total)
