"""Preferential-attachment (PA) power-law graph generator.

Unstructured P2P overlays such as Gnutella exhibit power-law degree
distributions (``f(d) ~ d^-alpha`` with ``alpha ≈ 2.3``), and the paper
evaluates Differential Gossip Trust exclusively on graphs grown by the
PA process of Barabási–Albert / Bollobás et al.: a new node joins with
``m`` edges and attaches to existing node ``i`` with probability
proportional to ``deg(i)``.

The generator below uses the standard *repeated-nodes* trick: a flat
array that contains each node once per incident edge endpoint, so a
uniform draw from it realises degree-proportional sampling in O(1).
Targets for a joining node are drawn without replacement (the result is
a simple graph, as required by :class:`repro.network.graph.Graph`).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def preferential_attachment_graph(
    num_nodes: int,
    m: int = 2,
    *,
    rng: RngLike = None,
) -> Graph:
    """Grow a PA graph ``G^m_N`` with ``num_nodes`` nodes and ``m`` edges per join.

    Parameters
    ----------
    num_nodes:
        Final number of nodes ``N``; must satisfy ``N > m``.
    m:
        Edges added per joining node. The paper's analysis requires
        ``m >= 2`` (with ``m = 1`` the PA process yields a tree on which
        push-type gossip provably stalls); ``m = 1`` is still permitted
        here for baseline experiments, but the differential gossip
        guarantees only hold for ``m >= 2``.
    rng:
        Seed / generator for reproducibility.

    Returns
    -------
    Graph
        A connected simple graph whose degree distribution follows a
        power law with exponent ``~3`` (the PA exponent; empirically
        Gnutella's 2.3 lies in the same heavy-tail regime).

    Notes
    -----
    The seed graph is a complete graph (a clique) on ``m + 1`` nodes, so every
    node has degree >= m and the graph is always connected — both
    assumptions the gossip engines rely on.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if num_nodes <= m:
        raise ValueError(f"num_nodes must exceed m ({m}), got {num_nodes}")
    generator = as_generator(rng)

    edges: List[tuple] = []
    # `repeated`: node u appears deg(u) times; uniform draws realise PA.
    repeated: List[int] = []

    seed_size = m + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.append((u, v))
            repeated.append(u)
            repeated.append(v)

    for new_node in range(seed_size, num_nodes):
        targets: Set[int] = set()
        # Draw distinct targets degree-proportionally.  Collisions are
        # re-drawn; with m << N the expected number of retries is tiny.
        while len(targets) < m:
            pick = repeated[int(generator.integers(len(repeated)))]
            targets.add(pick)
        for target in targets:
            edges.append((new_node, target))
            repeated.append(new_node)
            repeated.append(target)

    return Graph(num_nodes, edges)


def expected_num_edges(num_nodes: int, m: int) -> int:
    """Number of edges the generator produces for ``(num_nodes, m)``.

    The clique seed contributes ``m (m + 1) / 2`` edges and each of the
    remaining ``num_nodes - m - 1`` joins contributes ``m``.
    """
    if m < 1 or num_nodes <= m:
        raise ValueError("requires m >= 1 and num_nodes > m")
    return m * (m + 1) // 2 + m * (num_nodes - m - 1)


def degree_proportional_sample(graph: Graph, size: int, rng: RngLike = None) -> np.ndarray:
    """Sample ``size`` node ids with probability proportional to degree.

    Exposed for workload generators that need PA-consistent popularity
    (e.g. picking "power nodes" to seed content or collusion targets).
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    generator = as_generator(rng)
    degrees = graph.degrees.astype(np.float64)
    total = degrees.sum()
    if total <= 0:
        raise ValueError("graph has no edges; degree-proportional sampling undefined")
    return generator.choice(graph.num_nodes, size=size, p=degrees / total)
