"""Edge-balanced node partitioning for sharded gossip execution.

The sharded engine (:mod:`repro.core.sharded_engine`) splits one gossip
round horizontally: each worker process owns a contiguous *node shard*
and executes the push step for its nodes only. Two properties of the
partition matter:

- **Balance.** Per-step work is proportional to the number of directed
  edges a shard's nodes own (target sampling, share gathering), not to
  its node count — on a power-law overlay a node-balanced split would
  hand one shard all the hubs. :func:`partition_graph` therefore cuts
  the CSR row pointer at equal *edge* quantiles.
- **Halo maps.** A shard's pushes land on its own nodes and on a
  boundary set of foreign nodes — its *halo*. Each
  :class:`ShardView` precomputes the sorted halo ids plus, because the
  halo is sorted and shards are contiguous ranges, the slice of that
  halo belonging to every destination shard. The per-round halo
  exchange then reduces to slice arithmetic: destination shard ``d``
  adds ``halo[halo_slices[d]:halo_slices[d+1]]`` rows of every other
  shard's contribution buffer, in fixed shard order, which is what
  makes the merge byte-deterministic regardless of worker scheduling.

Partitions are pure functions of ``(graph, num_shards)`` — no
randomness — so the same overlay always shards the same way and a
re-partition after churn (a fresh :meth:`MutableOverlay.snapshot`) is
deterministic too.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.network.graph import Graph


class ShardView:
    """One shard of a partitioned graph: owned node range + halo maps.

    The shard owns the contiguous node range ``[lo, hi)``. Local ids
    number the owned nodes first (``node - lo``) and the halo nodes
    after them (``owned_size + position in halo``), so a contribution
    buffer of ``local_size`` rows captures every push the shard can
    make.

    Attributes
    ----------
    index:
        Shard number (also its seed-spawn key in the sharded engine).
    lo, hi:
        Owned node range ``[lo, hi)`` in global ids.
    halo:
        Sorted global ids of foreign nodes adjacent to owned nodes —
        the only non-owned push targets this shard can produce.
    halo_slices:
        ``(num_shards + 1,)`` prefix array: halo entries owned by
        destination shard ``d`` are ``halo[halo_slices[d]:halo_slices[d + 1]]``
        (and rows ``owned_size + halo_slices[d] ...`` of the shard's
        contribution buffer).
    """

    __slots__ = ("index", "lo", "hi", "halo", "halo_slices")

    def __init__(self, index: int, lo: int, hi: int, halo: np.ndarray, halo_slices: np.ndarray):
        self.index = int(index)
        self.lo = int(lo)
        self.hi = int(hi)
        self.halo = halo
        self.halo_slices = halo_slices

    @property
    def owned_size(self) -> int:
        """Number of owned nodes."""
        return self.hi - self.lo

    @property
    def local_size(self) -> int:
        """Rows of the shard's contribution buffer (owned + halo)."""
        return self.owned_size + int(self.halo.shape[0])

    def local_columns(self, columns: np.ndarray) -> np.ndarray:
        """Remap global target ids to this shard's local ids.

        Every entry must be an owned node or a member of ``halo`` (true
        for any column of an owned CSR row, by construction).
        """
        owned = (columns >= self.lo) & (columns < self.hi)
        halo_pos = np.searchsorted(self.halo, columns)
        return np.where(owned, columns - self.lo, self.owned_size + halo_pos)

    def local_csr(self, indptr: np.ndarray, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Shard-local CSR view: ``(indptr_local, indices_local)``.

        ``indptr_local`` has ``owned_size + 1`` entries rebased to 0 and
        ``indices_local`` holds local target ids, so samplers index the
        shard's contribution buffer directly.
        """
        start, stop = int(indptr[self.lo]), int(indptr[self.hi])
        indptr_local = (indptr[self.lo : self.hi + 1] - start).astype(np.int64)
        indices_local = self.local_columns(indices[start:stop]).astype(np.int64)
        return indptr_local, indices_local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardView(index={self.index}, nodes=[{self.lo}, {self.hi}), "
            f"halo={self.halo.shape[0]})"
        )


class GraphPartition:
    """An edge-balanced contiguous partition of a graph's node range."""

    __slots__ = ("graph", "boundaries", "shards")

    def __init__(self, graph: Graph, boundaries: np.ndarray, shards: List[ShardView]):
        self.graph = graph
        self.boundaries = boundaries
        self.shards = shards

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_of(self, node: int) -> int:
        """Index of the shard owning ``node``."""
        if not 0 <= node < self.graph.num_nodes:
            raise ValueError(f"node {node} outside 0..{self.graph.num_nodes - 1}")
        return int(np.searchsorted(self.boundaries, node, side="right") - 1)

    def edge_cut(self) -> float:
        """Fraction of directed edges whose endpoints sit in different shards.

        This is the volume of the per-round halo exchange relative to
        total push traffic — the quantity the edge-balanced split keeps
        bounded.
        """
        total = int(self.graph.indptr[-1])
        if total == 0:
            return 0.0
        # Count directed edges leaving each shard (column outside [lo, hi)).
        crossing = 0
        indptr, indices = self.graph.indptr, self.graph.indices
        for shard in self.shards:
            cols = indices[indptr[shard.lo] : indptr[shard.hi]]
            crossing += int(np.count_nonzero((cols < shard.lo) | (cols >= shard.hi)))
        return crossing / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphPartition(num_shards={self.num_shards}, graph={self.graph!r})"


def edge_balanced_boundaries(graph: Graph, num_shards: int) -> np.ndarray:
    """Contiguous node-range boundaries with ~equal directed edges per shard.

    Returns a non-decreasing ``(num_shards + 1,)`` array ``b`` with
    ``b[0] = 0`` and ``b[-1] = num_nodes``; shard ``s`` owns nodes
    ``[b[s], b[s + 1])``. Shards may be empty on extreme degree skew
    (one hub can own more edges than a whole quantile).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    n = graph.num_nodes
    indptr = graph.indptr
    total = int(indptr[-1])
    if total == 0:
        # No edges: balance node counts instead.
        cuts = np.linspace(0, n, num_shards + 1).astype(np.int64)
        return cuts
    quantiles = (np.arange(1, num_shards) * total) / num_shards
    cuts = np.searchsorted(indptr, quantiles, side="left").astype(np.int64)
    boundaries = np.concatenate(([0], cuts, [n]))
    np.maximum.accumulate(boundaries, out=boundaries)
    boundaries = np.minimum(boundaries, n)
    return boundaries


def partition_graph(graph: Graph, num_shards: int) -> GraphPartition:
    """Partition ``graph`` into ``num_shards`` edge-balanced node shards.

    ``num_shards`` is clamped to the node count. The result is fully
    deterministic in ``(graph, num_shards)``.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> part = partition_graph(example_network(), 3)
    >>> [shard.owned_size for shard in part.shards]
    [3, 3, 4]
    >>> part.shard_of(9)
    2
    """
    num_shards = max(1, min(int(num_shards), graph.num_nodes))
    boundaries = edge_balanced_boundaries(graph, num_shards)
    indptr, indices = graph.indptr, graph.indices
    shards: List[ShardView] = []
    for s in range(num_shards):
        lo, hi = int(boundaries[s]), int(boundaries[s + 1])
        cols = indices[indptr[lo] : indptr[hi]]
        foreign = cols[(cols < lo) | (cols >= hi)]
        halo = np.unique(foreign)
        halo_slices = np.searchsorted(halo, boundaries).astype(np.int64)
        shards.append(ShardView(s, lo, hi, halo, halo_slices))
    return GraphPartition(graph, boundaries, shards)
