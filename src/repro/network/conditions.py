"""Network conditions: link models — loss, latency, regions, partitions.

The paper models the network as perfect pipes and churn as a Bernoulli
per-push loss (Section 5.3, Figure 4). Real overlays run over WAN links
with heterogeneous latency, lossy last miles, regional clustering and
occasional partitions that heal. This module is the single home for all
of that *network realism*, factored out of the engines:

- :class:`PacketLossModel` — the paper's mass-conserving per-push loss
  (moved here from :mod:`repro.network.churn`, which keeps a
  deprecation re-export);
- :class:`LatencySpec` — a seeded one-dimensional delay distribution
  (constant / uniform / exponential / lognormal);
- :class:`LinkModel` — the protocol every network condition implements.
  It has two faces: :meth:`LinkModel.uniform_loss_probability` lets the
  *synchronous* engines keep their vectorised loss path (byte-identical
  to the historical ``loss_probability`` knob), and
  :meth:`LinkModel.bind` produces a per-run :class:`BoundLink` whose
  :meth:`BoundLink.transfer` the *event-driven* engine consults per
  push (drop? how much delay?);
- :class:`InstantLink` — the compatibility shim: zero latency,
  optional uniform loss. ``InstantLink(0.0)`` is provably a no-op (it
  consumes no randomness), so the refactored async engine is
  byte-identical to the pre-refactor one under it;
- :class:`HomogeneousLink` — one loss probability, one latency
  distribution and one optional bandwidth cap for every edge;
- :class:`RegionalLinkModel` — region/cluster assignment with intra- vs
  inter-region loss and latency, an optional flaky region, optional
  inter-region bandwidth caps, and scheduled
  :class:`PartitionWindow`\\ s that drop cross-group traffic until they
  heal;
- :class:`EpochPartition` — the epoch-indexed partition schedule the
  dynamic runtime (:mod:`repro.runtime.dynamics`) replays through
  :class:`repro.network.mutable.MutableOverlay`.

Determinism contract
--------------------
A link model instance is pure configuration; all randomness enters at
:meth:`LinkModel.bind` through an explicit generator. The backend layer
derives that generator *statelessly* from the run's seed via the same
``LOSS_STREAM_KEY`` child used for the classic loss stream, so link
randomness never perturbs an engine's target-selection stream — a
lossless zero-latency run draws the exact byte sequence of a run with
no link model at all. Per transfer, the bound link draws the loss
Bernoulli first and samples latency only for delivered pushes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_probability

__all__ = [
    "PacketLossModel",
    "no_loss",
    "LatencySpec",
    "INSTANT",
    "BoundLink",
    "LinkModel",
    "InstantLink",
    "HomogeneousLink",
    "PartitionWindow",
    "RegionalLinkModel",
    "EpochPartition",
    "block_regions",
]


class PacketLossModel:
    """Bernoulli per-push loss with mass-conserving self-redirect.

    P2P overlays run above TCP, so in the paper's model a push is only
    lost when the receiving peer has *left* the network (churn). The
    sender then gets no acknowledgement and — to keep the gossip mass
    conserved — pushes the pair to itself instead (Section 5.3,
    Figure 4).

    Parameters
    ----------
    loss_probability:
        Probability that any single push is lost (its receiver has
        churned away). ``0.0`` disables the model.
    rng:
        Seed / generator for the loss draws.

    Examples
    --------
    >>> model = PacketLossModel(1.0, rng=0)  # every push lost
    >>> senders = np.array([0, 1, 2])
    >>> targets = np.array([1, 2, 0])
    >>> model.apply(senders, targets).tolist()  # all redirected to self
    [0, 1, 2]
    """

    __slots__ = ("_loss_probability", "_rng", "_lost_count", "_delivered_count")

    def __init__(self, loss_probability: float, *, rng: RngLike = None):
        check_probability(loss_probability, "loss_probability")
        self._loss_probability = float(loss_probability)
        self._rng = as_generator(rng)
        self._lost_count = 0
        self._delivered_count = 0

    @property
    def loss_probability(self) -> float:
        """Configured per-push loss probability."""
        return self._loss_probability

    @property
    def lost_count(self) -> int:
        """Total pushes redirected to self so far."""
        return self._lost_count

    @property
    def delivered_count(self) -> int:
        """Total pushes delivered to their intended target so far."""
        return self._delivered_count

    def apply(self, senders: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Rewrite lost pushes to their senders.

        Parameters
        ----------
        senders:
            Node id of the sender of each push.
        targets:
            Intended receiver of each push; same shape as ``senders``.

        Returns
        -------
        numpy.ndarray
            Effective receivers: ``targets`` where delivered, ``senders``
            where lost. The input arrays are not modified.
        """
        senders = np.asarray(senders)
        targets = np.asarray(targets)
        if senders.shape != targets.shape:
            raise ValueError(
                f"senders shape {senders.shape} != targets shape {targets.shape}"
            )
        if self._loss_probability == 0.0 or targets.size == 0:
            self._delivered_count += int(targets.size)
            return targets.copy()
        lost = self._rng.random(targets.shape) < self._loss_probability
        self._lost_count += int(lost.sum())
        self._delivered_count += int(targets.size - lost.sum())
        return np.where(lost, senders, targets)

    def reset_counters(self) -> None:
        """Zero the delivered/lost counters (configuration is kept)."""
        self._lost_count = 0
        self._delivered_count = 0


def no_loss() -> PacketLossModel:
    """A :class:`PacketLossModel` that never loses a push."""
    return PacketLossModel(0.0, rng=0)


#: LatencySpec sampling families.
LATENCY_KINDS = ("constant", "uniform", "exponential", "lognormal")


@dataclass(frozen=True)
class LatencySpec:
    """A seeded one-way delay distribution, in simulated-time units.

    One simulated-time unit is the mean tick interval of a rate-1 node
    in the async engine, so ``mean=1.0`` means "a push is in flight for
    about as long as a node waits between pushes".

    Parameters
    ----------
    kind:
        ``"constant"`` (exactly ``mean``, draws no randomness),
        ``"uniform"`` (``U(mean - spread, mean + spread)``),
        ``"exponential"`` (mean ``mean``; ``spread`` ignored), or
        ``"lognormal"`` (mean ``mean``, log-space sigma ``spread``).
    mean:
        Mean delay; ``0.0`` with kind ``"constant"`` is the instant
        link.
    spread:
        Half-width (uniform) or log-sigma (lognormal); must keep
        uniform delays non-negative (``spread <= mean``).

    Examples
    --------
    >>> spec = LatencySpec("uniform", mean=2.0, spread=1.0)
    >>> rng = np.random.default_rng(0)
    >>> 1.0 <= spec.sample(rng) <= 3.0
    True
    >>> LatencySpec().is_instant
    True
    """

    kind: str = "constant"
    mean: float = 0.0
    spread: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in LATENCY_KINDS:
            raise ValueError(f"latency kind must be one of {LATENCY_KINDS}, got {self.kind!r}")
        if self.mean < 0:
            raise ValueError(f"latency mean must be >= 0, got {self.mean}")
        if self.spread < 0:
            raise ValueError(f"latency spread must be >= 0, got {self.spread}")
        if self.kind == "uniform" and self.spread > self.mean:
            raise ValueError(
                f"uniform latency needs spread <= mean to stay non-negative, "
                f"got spread={self.spread} > mean={self.mean}"
            )

    @property
    def is_instant(self) -> bool:
        """True when every sample is exactly zero."""
        if self.kind in ("constant", "exponential"):
            return self.mean == 0.0
        if self.kind == "uniform":
            return self.mean == 0.0 and self.spread == 0.0
        return self.mean == 0.0  # lognormal: mean 0 scales every sample to 0

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay. ``"constant"`` consumes no randomness."""
        if self.kind == "constant":
            return self.mean
        if self.kind == "uniform":
            return float(rng.uniform(self.mean - self.spread, self.mean + self.spread))
        if self.kind == "exponential":
            return float(rng.exponential(self.mean)) if self.mean > 0 else 0.0
        # lognormal with exact mean: E[exp(N(mu, s))] = exp(mu + s^2/2).
        if self.mean == 0.0:
            return 0.0
        mu = float(np.log(self.mean)) - 0.5 * self.spread * self.spread
        return float(rng.lognormal(mu, self.spread))


#: The zero-delay latency spec (constant 0 — draws no randomness).
INSTANT = LatencySpec()


def block_regions(num_nodes: int, num_regions: int) -> np.ndarray:
    """Contiguous-block region assignment: node ``i`` belongs to region
    ``i * k // n``.

    Shared by :func:`repro.network.random_graphs.regional_graph` and
    :class:`RegionalLinkModel`, so a regional topology and a regional
    link model with the same ``num_regions`` always agree on who lives
    where.

    Examples
    --------
    >>> block_regions(6, 2).tolist()
    [0, 0, 0, 1, 1, 1]
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if not 1 <= num_regions <= num_nodes:
        raise ValueError(
            f"num_regions must be in 1..num_nodes ({num_nodes}), got {num_regions}"
        )
    return (np.arange(num_nodes, dtype=np.int64) * num_regions) // num_nodes


class BoundLink(abc.ABC):
    """A link model bound to one graph and one generator for one run.

    The event-driven engine consults :meth:`transfer` once per push; the
    bound link owns the link randomness (never the engine's
    target-selection stream) and keeps delivery statistics.
    """

    __slots__ = ("_rng", "dropped_count", "delivered_count", "partition_dropped_count")

    def __init__(self, rng: RngLike):
        self._rng = as_generator(rng)
        #: Pushes dropped (self-redirected) by loss or flakiness.
        self.dropped_count = 0
        #: Pushes handed to the network for delivery.
        self.delivered_count = 0
        #: Dropped pushes attributable to an active partition window.
        self.partition_dropped_count = 0

    @property
    def is_trivial(self) -> bool:
        """True when every transfer is instant and lossless (the bound
        link then consumes no randomness at all)."""
        return False

    @property
    def quiet_horizon(self) -> float:
        """Earliest simulated time at which link behaviour is time-invariant.

        While a partition window is active the network can be xi-quiet —
        islands converge internally, cross-region pushes are dropped
        without moving any estimate — even though islands disagree. The
        engine therefore refuses to declare convergence before this
        horizon (the end of the last scheduled partition window; ``0.0``
        for time-invariant models)."""
        return 0.0

    @abc.abstractmethod
    def transfer(self, now: float, sender: int, target: int) -> Tuple[bool, float]:
        """Fate of one push at simulated time ``now``.

        Returns ``(dropped, delay)``: ``dropped`` means the push never
        leaves the sender (mass-conserving self-redirect), otherwise it
        arrives at ``target`` after ``delay`` simulated-time units
        (``0.0`` = instant, delivered inline).
        """


class LinkModel(abc.ABC):
    """Protocol for network conditions, with a sync face and an async face.

    Synchronous engines have no time axis, so they can only express
    *uniform, instant* loss: when :attr:`has_latency` is False and
    :attr:`uniform_loss_probability` is not None, the backend layer
    materialises the model as the classic :class:`PacketLossModel`
    (byte-identical to the historical ``loss_probability`` path).
    Everything else — latency, bandwidth, per-region loss, partitions —
    requires the event-driven engine, which calls :meth:`bind` and
    consults the returned :class:`BoundLink` per push.
    """

    @property
    @abc.abstractmethod
    def has_latency(self) -> bool:
        """True when the model needs the event-driven engine: non-zero
        delays, bandwidth queueing, or time-dependent behaviour
        (partition windows). Synchronous backends raise
        ``BackendCapabilityError`` for such models."""

    @property
    def uniform_loss_probability(self) -> Optional[float]:
        """The single edge-independent loss probability, or ``None`` when
        loss depends on the edge (regional / flaky models)."""
        return None

    @abc.abstractmethod
    def bind(self, graph, rng: RngLike) -> BoundLink:
        """Bind to ``graph`` for one run, drawing link randomness from
        ``rng`` (a dedicated stream — never the engine's)."""


class _InstantBound(BoundLink):
    """Zero-latency bound link with optional uniform loss."""

    __slots__ = ("_loss_probability",)

    def __init__(self, loss_probability: float, rng: RngLike):
        super().__init__(rng)
        self._loss_probability = float(loss_probability)

    @property
    def is_trivial(self) -> bool:
        return self._loss_probability == 0.0

    def transfer(self, now: float, sender: int, target: int) -> Tuple[bool, float]:
        if self._loss_probability > 0.0 and self._rng.random() < self._loss_probability:
            self.dropped_count += 1
            return True, 0.0
        self.delivered_count += 1
        return False, 0.0


class InstantLink(LinkModel):
    """The compatibility shim: zero latency, optional uniform loss.

    ``InstantLink(0.0)`` consumes no randomness and delivers everything
    inline — the refactored async engine under it is byte-identical to
    the pre-refactor engine, and the sync backends under
    ``InstantLink(p)`` are byte-identical to ``loss_probability=p``
    (both contracts are pinned by tests).

    Examples
    --------
    >>> link = InstantLink(0.25)
    >>> link.has_latency, link.uniform_loss_probability
    (False, 0.25)
    >>> bound = InstantLink(0.0).bind(None, 0)
    >>> bound.transfer(0.0, 1, 2)  # lossless + instant: deliver inline
    (False, 0.0)
    """

    def __init__(self, loss_probability: float = 0.0):
        check_probability(loss_probability, "loss_probability")
        self._loss_probability = float(loss_probability)

    @property
    def has_latency(self) -> bool:
        return False

    @property
    def uniform_loss_probability(self) -> Optional[float]:
        return self._loss_probability

    def bind(self, graph, rng: RngLike) -> BoundLink:
        return _InstantBound(self._loss_probability, rng)

    def __repr__(self) -> str:
        return f"InstantLink(loss_probability={self._loss_probability})"


class _Bandwidth:
    """Per-directed-edge FIFO queueing under a messages-per-time cap.

    A link transmits one push per ``1 / bandwidth`` time units; a push
    arriving while the link is busy waits for the queue to drain. The
    next-free times are per ``(sender, target)`` pair, so reverse
    traffic does not contend (full-duplex links).
    """

    __slots__ = ("_service_time", "_next_free")

    def __init__(self, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._service_time = 1.0 / float(bandwidth)
        self._next_free: Dict[Tuple[int, int], float] = {}

    def queueing_delay(self, now: float, sender: int, target: int) -> float:
        """Wait-plus-transmit time for one push entering the link now."""
        key = (sender, target)
        start = max(now, self._next_free.get(key, 0.0))
        depart = start + self._service_time
        self._next_free[key] = depart
        return depart - now


class _HomogeneousBound(BoundLink):
    """Every edge shares one loss probability / latency / bandwidth."""

    __slots__ = ("_loss_probability", "_latency", "_bandwidth")

    def __init__(
        self,
        loss_probability: float,
        latency: LatencySpec,
        bandwidth: Optional[float],
        rng: RngLike,
    ):
        super().__init__(rng)
        self._loss_probability = float(loss_probability)
        self._latency = latency
        self._bandwidth = _Bandwidth(bandwidth) if bandwidth is not None else None

    def transfer(self, now: float, sender: int, target: int) -> Tuple[bool, float]:
        if self._loss_probability > 0.0 and self._rng.random() < self._loss_probability:
            self.dropped_count += 1
            return True, 0.0
        delay = self._latency.sample(self._rng)
        if self._bandwidth is not None:
            delay += self._bandwidth.queueing_delay(now, sender, target)
        self.delivered_count += 1
        return False, delay


class HomogeneousLink(LinkModel):
    """One loss probability, latency distribution and optional bandwidth
    cap shared by every edge.

    Examples
    --------
    >>> link = HomogeneousLink(latency=LatencySpec("exponential", mean=1.0))
    >>> link.has_latency
    True
    >>> bound = link.bind(None, 7)
    >>> dropped, delay = bound.transfer(0.0, 0, 1)
    >>> dropped, delay > 0.0
    (False, True)
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        *,
        latency: LatencySpec = INSTANT,
        bandwidth: Optional[float] = None,
    ):
        check_probability(loss_probability, "loss_probability")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._loss_probability = float(loss_probability)
        self._latency = latency
        self._bandwidth = bandwidth

    @property
    def has_latency(self) -> bool:
        return not self._latency.is_instant or self._bandwidth is not None

    @property
    def uniform_loss_probability(self) -> Optional[float]:
        return self._loss_probability

    @property
    def latency(self) -> LatencySpec:
        """The shared delay distribution."""
        return self._latency

    def bind(self, graph, rng: RngLike) -> BoundLink:
        return _HomogeneousBound(self._loss_probability, self._latency, self._bandwidth, rng)

    def __repr__(self) -> str:
        return (
            f"HomogeneousLink(loss_probability={self._loss_probability}, "
            f"latency={self._latency!r}, bandwidth={self._bandwidth})"
        )


@dataclass(frozen=True)
class PartitionWindow:
    """A scheduled partition in simulated time: from ``start`` until
    ``start + duration``, pushes crossing region groups are dropped
    (with the usual mass-conserving self-redirect); afterwards the
    network heals and cross-region traffic flows again.

    Examples
    --------
    >>> window = PartitionWindow(start=5.0, duration=10.0)
    >>> window.active(4.9), window.active(5.0), window.active(15.0)
    (False, True, False)
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"partition start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"partition duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        """First instant after the heal."""
        return self.start + self.duration

    def active(self, now: float) -> bool:
        """Whether the partition is in force at ``now``."""
        return self.start <= now < self.end


class _RegionalBound(BoundLink):
    """Per-edge conditions derived from a region assignment."""

    __slots__ = ("_model", "_regions", "_bandwidth")

    def __init__(self, model: "RegionalLinkModel", regions: np.ndarray, rng: RngLike):
        super().__init__(rng)
        self._model = model
        self._regions = regions
        self._bandwidth = (
            _Bandwidth(model.inter_bandwidth) if model.inter_bandwidth is not None else None
        )

    @property
    def quiet_horizon(self) -> float:
        if not self._model.partitions:
            return 0.0
        return max(window.end for window in self._model.partitions)

    def transfer(self, now: float, sender: int, target: int) -> Tuple[bool, float]:
        model = self._model
        ru = int(self._regions[sender])
        rv = int(self._regions[target])
        cross = ru != rv
        if cross:
            for window in model.partitions:
                if window.active(now):
                    # Partitioned: the push never crosses; no randomness
                    # is consumed (deterministic cut, deterministic heal).
                    self.dropped_count += 1
                    self.partition_dropped_count += 1
                    return True, 0.0
        loss = model.inter_loss if cross else model.intra_loss
        if model.flaky_region is not None and model.flaky_region in (ru, rv):
            loss = max(loss, model.flaky_loss)
        if loss > 0.0 and self._rng.random() < loss:
            self.dropped_count += 1
            return True, 0.0
        latency = model.inter_latency if cross else model.intra_latency
        delay = latency.sample(self._rng)
        if cross and self._bandwidth is not None:
            delay += self._bandwidth.queueing_delay(now, sender, target)
        self.delivered_count += 1
        return False, delay


class RegionalLinkModel(LinkModel):
    """Region/cluster link conditions: LAN inside a region, WAN across.

    Parameters
    ----------
    regions:
        Either the number of regions (nodes are then assigned by
        :func:`block_regions`, matching
        :func:`repro.network.random_graphs.regional_graph`) or an
        explicit per-node region array.
    intra_loss, inter_loss:
        Per-push loss probability within / across regions.
    intra_latency, inter_latency:
        Delay distributions within / across regions.
    inter_bandwidth:
        Optional messages-per-time cap on each directed cross-region
        link (FIFO queueing; intra-region links are uncapped).
    flaky_region:
        Optional region index whose links (either endpoint) lose pushes
        with at least ``flaky_loss`` probability.
    flaky_loss:
        Loss floor applied to the flaky region's links.
    partitions:
        :class:`PartitionWindow` schedule; while a window is active,
        cross-region pushes are dropped deterministically.

    Examples
    --------
    >>> model = RegionalLinkModel(
    ...     2,
    ...     inter_latency=LatencySpec("constant", mean=1.0),
    ... )
    >>> model.has_latency
    True
    >>> bound = model.bind(4, rng=0)  # 4 nodes -> regions [0, 0, 1, 1]
    >>> bound.transfer(0.0, 0, 1)    # intra-region: instant
    (False, 0.0)
    >>> bound.transfer(0.0, 1, 2)    # cross-region: one time unit
    (False, 1.0)
    """

    def __init__(
        self,
        regions: "int | np.ndarray",
        *,
        intra_loss: float = 0.0,
        inter_loss: float = 0.0,
        intra_latency: LatencySpec = INSTANT,
        inter_latency: LatencySpec = INSTANT,
        inter_bandwidth: Optional[float] = None,
        flaky_region: Optional[int] = None,
        flaky_loss: float = 0.0,
        partitions: Tuple[PartitionWindow, ...] = (),
    ):
        check_probability(intra_loss, "intra_loss")
        check_probability(inter_loss, "inter_loss")
        check_probability(flaky_loss, "flaky_loss")
        if inter_bandwidth is not None and inter_bandwidth <= 0:
            raise ValueError(f"inter_bandwidth must be positive, got {inter_bandwidth}")
        if isinstance(regions, (int, np.integer)):
            if regions < 1:
                raise ValueError(f"regions count must be >= 1, got {regions}")
            self._num_regions: Optional[int] = int(regions)
            self._explicit_regions: Optional[np.ndarray] = None
        else:
            assignment = np.asarray(regions, dtype=np.int64)
            if assignment.ndim != 1 or assignment.size == 0:
                raise ValueError("explicit regions must be a non-empty 1-D array")
            if assignment.min() < 0:
                raise ValueError("region indices must be >= 0")
            self._num_regions = None
            self._explicit_regions = assignment
        num_regions = (
            self._num_regions
            if self._num_regions is not None
            else int(self._explicit_regions.max()) + 1
        )
        if flaky_region is not None and not 0 <= flaky_region < num_regions:
            raise ValueError(
                f"flaky_region must be in 0..{num_regions - 1}, got {flaky_region}"
            )
        if flaky_region is not None and flaky_loss == 0.0:
            raise ValueError("flaky_region set but flaky_loss is 0 (a no-op flake)")
        self.intra_loss = float(intra_loss)
        self.inter_loss = float(inter_loss)
        self.intra_latency = intra_latency
        self.inter_latency = inter_latency
        self.inter_bandwidth = inter_bandwidth
        self.flaky_region = flaky_region
        self.flaky_loss = float(flaky_loss)
        self.partitions = tuple(partitions)

    @property
    def has_latency(self) -> bool:
        # Partition windows are time-dependent behaviour a synchronous
        # round schedule cannot express, so they force the event-driven
        # engine even when every latency is zero.
        return (
            not self.intra_latency.is_instant
            or not self.inter_latency.is_instant
            or self.inter_bandwidth is not None
            or bool(self.partitions)
        )

    @property
    def uniform_loss_probability(self) -> Optional[float]:
        if (
            self.intra_loss == self.inter_loss
            and self.flaky_region is None
            and not self.partitions
        ):
            return self.intra_loss
        return None

    def resolve_regions(self, graph_or_n) -> np.ndarray:
        """Per-node region assignment for a graph (or node count)."""
        if self._explicit_regions is not None:
            return self._explicit_regions
        n = graph_or_n if isinstance(graph_or_n, (int, np.integer)) else graph_or_n.num_nodes
        return block_regions(int(n), self._num_regions)

    def bind(self, graph, rng: RngLike) -> BoundLink:
        regions = self.resolve_regions(graph)
        return _RegionalBound(self, regions, rng)

    def __repr__(self) -> str:
        regions = (
            self._num_regions
            if self._num_regions is not None
            else f"explicit[{self._explicit_regions.size}]"
        )
        parts = [f"RegionalLinkModel({regions}"]
        if self.intra_loss or self.inter_loss:
            parts.append(f"loss={self.intra_loss:g}/{self.inter_loss:g}")
        if not self.intra_latency.is_instant or not self.inter_latency.is_instant:
            parts.append(f"latency={self.intra_latency.mean:g}/{self.inter_latency.mean:g}")
        if self.inter_bandwidth is not None:
            parts.append(f"inter_bandwidth={self.inter_bandwidth:g}")
        if self.flaky_region is not None:
            parts.append(f"flaky_region={self.flaky_region} (loss={self.flaky_loss:g})")
        if self.partitions:
            parts.append(f"partitions={list(self.partitions)}")
        return ", ".join(parts) + ")"


@dataclass(frozen=True)
class EpochPartition:
    """An epoch-indexed partition schedule for the dynamic runtime.

    The static async engine partitions in *simulated time* via
    :class:`PartitionWindow`; a dynamic run partitions in *epochs*: at
    ``start_epoch`` the runtime cuts every overlay edge crossing peer-id
    groups (re-cutting each active epoch, since joins may re-wire
    across), and at ``heal_epoch`` it re-adds the surviving cut edges.
    Groups are ``peer_id % num_groups`` — peer ids are unbounded under
    churn, so a modulo assignment (unlike contiguous blocks) stays
    meaningful as identities come and go.

    Examples
    --------
    >>> schedule = EpochPartition(start_epoch=2, heal_epoch=4)
    >>> [schedule.active(e) for e in range(5)]
    [False, False, True, True, False]
    >>> schedule.group(7)
    1
    """

    start_epoch: int
    heal_epoch: int
    num_groups: int = 2

    def __post_init__(self) -> None:
        if self.start_epoch < 0:
            raise ValueError(f"start_epoch must be >= 0, got {self.start_epoch}")
        if self.heal_epoch <= self.start_epoch:
            raise ValueError(
                f"heal_epoch ({self.heal_epoch}) must be > start_epoch ({self.start_epoch})"
            )
        if self.num_groups < 2:
            raise ValueError(f"num_groups must be >= 2, got {self.num_groups}")

    def active(self, epoch: int) -> bool:
        """Whether the partition is in force during ``epoch``."""
        return self.start_epoch <= epoch < self.heal_epoch

    def group(self, peer_id: int) -> int:
        """Partition group of ``peer_id`` (``peer_id % num_groups``)."""
        return int(peer_id) % self.num_groups
