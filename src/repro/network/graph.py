"""Undirected simple graph backed by CSR adjacency arrays.

The gossip engines need exactly three things from a topology, all of them
hot-path: a node's neighbour list, its degree, and the mean degree of its
neighbours (the denominator of the differential push ratio ``k_i``).
Storing adjacency in compressed-sparse-row form gives each of these as an
O(1) slice / precomputed array lookup, and makes the vectorised engine's
scatter-adds cache-friendly for networks up to the paper's 50 000 nodes.

Graphs are immutable after construction; churn is modelled at the
message layer (see :mod:`repro.network.churn`), matching the paper's
assumption that a leaving node hands its gossip mass to another node
rather than mutating the topology mid-round.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


class Graph:
    """Immutable undirected simple graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are the integers ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(u, v)`` pairs. Self-loops and duplicate edges are
        rejected — the gossip protocol pushes to *distinct neighbours*,
        and a multi-edge would silently bias target selection.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> sorted(int(v) for v in g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_num_nodes",
        "_indptr",
        "_indices",
        "_degrees",
        "_avg_neighbor_degree",
        "_scipy_csr",
    )

    def __init__(self, num_nodes: int, edges: Iterable[Edge]):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self._num_nodes = int(num_nodes)

        seen: set = set()
        adjacency: List[List[int]] = [[] for _ in range(self._num_nodes)]
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
                raise ValueError(
                    f"edge ({u}, {v}) references a node outside 0..{self._num_nodes - 1}"
                )
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)

        degrees = np.array([len(nbrs) for nbrs in adjacency], dtype=np.int64)
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for node, nbrs in enumerate(adjacency):
            nbrs.sort()
            indices[indptr[node] : indptr[node + 1]] = nbrs

        self._finalize(indptr, indices, degrees)

    def _finalize(self, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray) -> None:
        """Install validated CSR arrays and derived degree statistics."""
        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        self._avg_neighbor_degree = self._compute_avg_neighbor_degree()
        self._scipy_csr = None

    # -- alternate constructors ---------------------------------------------

    @classmethod
    def from_csr(
        cls,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> "Graph":
        """Build a :class:`Graph` directly from CSR adjacency arrays.

        This is the fast path for large graphs: construction is fully
        vectorised (no per-edge Python loop), so million-node topologies
        build in milliseconds once their CSR arrays exist.

        Parameters
        ----------
        num_nodes:
            Number of nodes.
        indptr, indices:
            CSR row pointers (``(num_nodes + 1,)``) and column indices.
            Each row must be strictly increasing (sorted, no duplicate
            neighbours), free of self-loops, and the adjacency must be
            symmetric.
        validate:
            Skip the O(E) structural checks when ``False`` — only for
            arrays that provably came from another :class:`Graph`.

        Examples
        --------
        >>> g = Graph(3, [(0, 1), (1, 2)])
        >>> h = Graph.from_csr(3, g.indptr, g.indices)
        >>> h == g
        True
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        n = int(num_nodes)
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        for name, array in (("indptr", indptr), ("indices", indices)):
            if not np.issubdtype(array.dtype, np.integer):
                # Silent float truncation would fabricate edges from a
                # misaligned array (e.g. a scipy .data array).
                raise ValueError(f"{name} must be an integer array, got dtype {array.dtype}")
        indptr = np.array(indptr, dtype=np.int64, copy=True)
        indices = np.array(indices, dtype=np.int64, copy=True)
        if indptr.shape != (n + 1,):
            raise ValueError(f"indptr must have shape ({n + 1},), got {indptr.shape}")
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        degrees = np.diff(indptr)
        if validate:
            if indptr[0] != 0 or int(indptr[-1]) != indices.shape[0] or np.any(degrees < 0):
                raise ValueError("indptr must start at 0, be non-decreasing and end at len(indices)")
            if indices.size and (indices.min() < 0 or indices.max() >= n):
                raise ValueError(f"indices reference nodes outside 0..{n - 1}")
            rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
            if np.any(rows == indices):
                raise ValueError("self-loops are not allowed")
            if indices.size > 1:
                same_row = rows[1:] == rows[:-1]
                if np.any(same_row & (np.diff(indices) <= 0)):
                    raise ValueError("each CSR row must be strictly increasing (sorted, no duplicates)")
            # Symmetry: the multiset of directed edges equals its reverse.
            forward = np.sort(rows * n + indices)
            backward = np.sort(indices * n + rows)
            if not np.array_equal(forward, backward):
                raise ValueError("adjacency is not symmetric")
        graph = object.__new__(cls)
        graph._num_nodes = n
        graph._finalize(indptr, indices, degrees)
        return graph

    @classmethod
    def from_scipy_sparse(cls, matrix) -> "Graph":
        """Build a :class:`Graph` from a scipy sparse adjacency matrix.

        The nonzero *pattern* of ``matrix`` defines the edges (values are
        ignored); it must be square, symmetric and zero-diagonal.

        Examples
        --------
        >>> import scipy.sparse
        >>> adj = scipy.sparse.csr_matrix(
        ...     ([1.0, 1.0, 1.0, 1.0], ([0, 1, 1, 2], [1, 0, 2, 1])), shape=(3, 3)
        ... )
        >>> Graph.from_scipy_sparse(adj).num_edges
        2
        """
        csr = matrix.tocsr(copy=True)
        rows, cols = csr.shape
        if rows != cols:
            raise ValueError(f"adjacency must be square, got shape {csr.shape}")
        csr.sum_duplicates()
        # Stored entries that are numerically zero (e.g. duplicates that
        # cancelled, or results of sparse arithmetic) are NOT edges.
        csr.eliminate_zeros()
        csr.sort_indices()
        return cls.from_csr(rows, csr.indptr, csr.indices)

    def to_scipy_csr(self):
        """This graph's adjacency as a ``scipy.sparse.csr_matrix`` (cached).

        Entries are 1.0 at every edge. The matrix is built once and
        shared across callers — treat it as read-only.

        Examples
        --------
        >>> g = Graph(3, [(0, 1), (1, 2)])
        >>> g.to_scipy_csr().toarray().tolist()
        [[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]
        """
        if self._scipy_csr is None:
            try:
                import scipy.sparse
            except ImportError as error:  # pragma: no cover - scipy is a core dependency
                raise ImportError("to_scipy_csr() requires scipy") from error
            data = np.ones(self._indices.shape[0], dtype=np.float64)
            self._scipy_csr = scipy.sparse.csr_matrix(
                (data, self._indices.copy(), self._indptr.copy()),
                shape=(self._num_nodes, self._num_nodes),
            )
        return self._scipy_csr

    def _compute_avg_neighbor_degree(self) -> np.ndarray:
        """Mean degree over each node's neighbourhood (0.0 for isolated nodes)."""
        sums = np.zeros(self._num_nodes, dtype=np.float64)
        np.add.at(sums, np.repeat(np.arange(self._num_nodes), self._degrees), self._degrees[self._indices].astype(np.float64))
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(self._degrees > 0, sums / np.maximum(self._degrees, 1), 0.0)
        return avg

    # -- basic accessors ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._indices.shape[0]) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Read-only array of node degrees (shape ``(num_nodes,)``)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only), for vectorised engines."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only), for vectorised engines."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def average_neighbor_degrees(self) -> np.ndarray:
        """Mean neighbour degree per node (read-only array).

        This is the quantity each node learns by having every neighbour
        push its degree once at round start (paper Section 4.1.1).
        """
        view = self._avg_neighbor_degree.view()
        view.flags.writeable = False
        return view

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of neighbours of ``node`` (read-only view)."""
        view = self._indices[self._indptr[node] : self._indptr[node + 1]]
        view.flags.writeable = False
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        nbrs = self._indices[self._indptr[u] : self._indptr[u + 1]]
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.shape[0] and nbrs[pos] == v)

    def edges(self) -> Iterator[Edge]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    # -- structure queries ---------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (single node counts as connected)."""
        if self._num_nodes == 1:
            return True
        visited = np.zeros(self._num_nodes, dtype=bool)
        queue: deque = deque([0])
        visited[0] = True
        count = 1
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if not visited[v]:
                    visited[v] = True
                    count += 1
                    queue.append(int(v))
        return count == self._num_nodes

    def connected_components(self) -> List[List[int]]:
        """List of connected components, each a sorted list of node ids."""
        visited = np.zeros(self._num_nodes, dtype=bool)
        components: List[List[int]] = []
        for start in range(self._num_nodes):
            if visited[start]:
                continue
            component = [start]
            visited[start] = True
            queue: deque = deque([start])
            while queue:
                u = queue.popleft()
                for v in self.neighbors(u):
                    if not visited[v]:
                        visited[v] = True
                        component.append(int(v))
                        queue.append(int(v))
            components.append(sorted(component))
        return components

    def diameter_estimate(self, samples: int = 8, rng: "np.random.Generator | None" = None) -> int:
        """Lower-bound estimate of the diameter via repeated double-sweep BFS.

        Exact diameters are O(N·E); the analysis in Section 5.1 only needs
        the ``~log2 N`` scale of PA-graph diameters, for which the classic
        double-sweep lower bound is accurate in practice.
        """
        if not self.is_connected():
            raise ValueError("diameter is undefined for a disconnected graph")
        generator = rng if rng is not None else np.random.default_rng(0)
        best = 0
        for _ in range(max(1, samples)):
            start = int(generator.integers(self._num_nodes))
            far, _ = self._bfs_farthest(start)
            _, dist = self._bfs_farthest(far)
            best = max(best, dist)
        return best

    def _bfs_farthest(self, start: int) -> Tuple[int, int]:
        """Return ``(farthest_node, distance)`` from ``start`` by BFS."""
        dist = np.full(self._num_nodes, -1, dtype=np.int64)
        dist[start] = 0
        queue: deque = deque([start])
        farthest, far_dist = start, 0
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    if dist[v] > far_dist:
                        farthest, far_dist = int(v), int(dist[v])
                    queue.append(int(v))
        return farthest, far_dist

    def degree_histogram(self) -> Dict[int, int]:
        """Map ``degree -> number of nodes with that degree``."""
        values, counts = np.unique(self._degrees, return_counts=True)
        return {int(d): int(c) for d, c in zip(values, counts)}

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self._indices.tobytes()))


def from_adjacency(adjacency: Sequence[Sequence[int]]) -> Graph:
    """Build a :class:`Graph` from an adjacency-list representation.

    Each entry ``adjacency[u]`` lists the neighbours of ``u``; the listing
    must be symmetric (``v in adjacency[u]`` iff ``u in adjacency[v]``).
    """
    num_nodes = len(adjacency)
    edges = []
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            if u < v:
                edges.append((u, v))
            elif u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
    graph = Graph(num_nodes, edges)
    for u, nbrs in enumerate(adjacency):
        if sorted(int(v) for v in nbrs) != list(map(int, graph.neighbors(u))):
            raise ValueError(f"adjacency list for node {u} is not symmetric")
    return graph
