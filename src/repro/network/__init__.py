"""Network substrate: graphs, generators and network conditions.

The paper evaluates Differential Gossip Trust exclusively on power-law
networks produced by the preferential-attachment (PA) process, so this
package provides:

- :class:`repro.network.graph.Graph` — an immutable CSR-backed undirected
  graph with the degree statistics the differential push rule needs;
- :func:`repro.network.preferential_attachment.preferential_attachment_graph`
  — the Barabási–Albert / Bollobás PA generator (``m >= 2``);
- :mod:`repro.network.degree_sequence` — Havel–Hakimi construction,
  Erdős–Gallai graphicality test and a power-law exponent estimator;
- :func:`repro.network.topology_example.example_network` — the 10-node
  network of the paper's Figure 2 (degree sequence 4,4,7,3,3,2,2,2,3,2);
- :mod:`repro.network.conditions` — seeded link models for network
  realism: :class:`~repro.network.conditions.PacketLossModel` (the
  mass-conserving packet-loss model of Figure 4, formerly in
  ``churn``), plus latency/bandwidth/region/partition-aware
  :class:`~repro.network.conditions.LinkModel` implementations
  (:class:`~repro.network.conditions.InstantLink`,
  :class:`~repro.network.conditions.HomogeneousLink`,
  :class:`~repro.network.conditions.RegionalLinkModel`) that the
  event-driven async backend executes natively;
- :func:`repro.network.random_graphs.regional_graph` — a
  planted-partition topology whose blocks line up with
  :class:`~repro.network.conditions.RegionalLinkModel` regions.
"""

from repro.network.conditions import (
    EpochPartition,
    HomogeneousLink,
    InstantLink,
    LatencySpec,
    LinkModel,
    PacketLossModel,
    PartitionWindow,
    RegionalLinkModel,
    block_regions,
)
from repro.network.mutable import MutableOverlay
from repro.network.degree_sequence import (
    estimate_power_law_exponent,
    havel_hakimi_graph,
    is_graphical,
)
from repro.network.graph import Graph
from repro.network.partition import GraphPartition, ShardView, partition_graph
from repro.network.preferential_attachment import (
    preferential_attachment_graph,
    preferential_attachment_graph_fast,
)
from repro.network.random_graphs import (
    erdos_renyi_graph,
    random_regular_graph,
    regional_graph,
)
from repro.network.topology_example import EXAMPLE_DEGREES, EXAMPLE_K_VALUES, example_network

__all__ = [
    "Graph",
    "MutableOverlay",
    "PacketLossModel",
    "LinkModel",
    "LatencySpec",
    "InstantLink",
    "HomogeneousLink",
    "RegionalLinkModel",
    "PartitionWindow",
    "EpochPartition",
    "block_regions",
    "GraphPartition",
    "ShardView",
    "partition_graph",
    "preferential_attachment_graph",
    "preferential_attachment_graph_fast",
    "erdos_renyi_graph",
    "random_regular_graph",
    "regional_graph",
    "havel_hakimi_graph",
    "is_graphical",
    "estimate_power_law_exponent",
    "example_network",
    "EXAMPLE_DEGREES",
    "EXAMPLE_K_VALUES",
]
