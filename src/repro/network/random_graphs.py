"""Non-PA overlay generators, for ablations.

The differential rule's entire advantage comes from degree skew: on a
(near-)regular topology ``k_i ≈ 1`` everywhere and differential push
*is* normal push. These generators provide the controls that make the
claim falsifiable:

- :func:`erdos_renyi_graph` — G(n, p): light-tailed Poisson degrees;
- :func:`random_regular_graph` — every degree identical;
- :func:`regional_graph` — a planted-partition overlay (dense regions,
  sparse cross-region links) whose region blocks line up with
  :class:`repro.network.conditions.RegionalLinkModel`.

`benchmarks/bench_ablation_overlay.py` runs the same convergence
experiment on PA vs ER vs regular and shows the differential/normal gap
collapsing as the degree distribution flattens.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.network.conditions import block_regions
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_probability


def erdos_renyi_graph(num_nodes: int, edge_probability: float, *, rng: RngLike = None) -> Graph:
    """G(n, p) random graph.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    edge_probability:
        Independent probability of each of the ``n(n-1)/2`` edges.
    rng:
        Seed / generator.

    Notes
    -----
    Sampling is vectorised over the upper triangle, so generation is
    O(n^2 / 2) bits — fine for the ablation sizes (<= a few thousand).

    Examples
    --------
    >>> g = erdos_renyi_graph(100, 0.05, rng=1)
    >>> 0 < g.num_edges < 100 * 99 / 2
    True
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    check_probability(edge_probability, "edge_probability")
    generator = as_generator(rng)
    rows, cols = np.triu_indices(num_nodes, k=1)
    mask = generator.random(rows.shape[0]) < edge_probability
    edges = list(zip(rows[mask].tolist(), cols[mask].tolist()))
    return Graph(num_nodes, edges)


def random_regular_graph(num_nodes: int, degree: int, *, rng: RngLike = None, max_retries: int = 100) -> Graph:
    """Uniform-ish random ``degree``-regular simple graph (pairing model).

    Parameters
    ----------
    num_nodes:
        Number of nodes; ``num_nodes * degree`` must be even and
        ``degree < num_nodes``.
    degree:
        Common degree of every node.
    rng:
        Seed / generator.
    max_retries:
        Pairing-model rejection attempts before giving up (failure
        probability per attempt is bounded away from 1 for fixed
        degree).

    Examples
    --------
    >>> g = random_regular_graph(50, 4, rng=2)
    >>> set(map(int, g.degrees)) == {4}
    True
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if degree >= num_nodes:
        raise ValueError(f"degree ({degree}) must be < num_nodes ({num_nodes})")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError(f"num_nodes * degree must be even, got {num_nodes} * {degree}")
    generator = as_generator(rng)

    for _ in range(max_retries):
        stubs = np.repeat(np.arange(num_nodes), degree)
        generator.shuffle(stubs)
        # Pair consecutive stubs, then repair conflicts (self-loops and
        # duplicates) by edge swaps — far more reliable than rejecting
        # the whole pairing, whose success probability decays like
        # exp(-(d^2 - 1)/4).
        pairs: List[List[int]] = [
            [int(stubs[i]), int(stubs[i + 1])] for i in range(0, stubs.size, 2)
        ]
        if _repair_pairing(pairs, generator, max_swaps=50 * len(pairs)):
            edges = [(min(u, v), max(u, v)) for u, v in pairs]
            return Graph(num_nodes, edges)
    raise RuntimeError(
        f"pairing model failed to produce a simple {degree}-regular graph "
        f"on {num_nodes} nodes within {max_retries} attempts"
    )


def regional_graph(
    num_nodes: int,
    num_regions: int,
    *,
    intra_probability: float = 0.2,
    inter_probability: float = 0.01,
    rng: RngLike = None,
) -> Graph:
    """Planted-partition overlay: dense regions, sparse cross links.

    Nodes are split into ``num_regions`` contiguous blocks by
    :func:`repro.network.conditions.block_regions`, so the same
    ``num_regions`` handed to
    :class:`~repro.network.conditions.RegionalLinkModel` assigns every
    peer the region its topology was generated in. Within a region each
    pair is linked with ``intra_probability``; across regions with
    ``inter_probability``. Connectivity is guaranteed: each region gets
    a Hamiltonian path through its block and consecutive regions are
    joined by one deterministic bridge edge (block boundaries), so even
    ``inter_probability=0`` yields a single component.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    num_regions:
        Number of contiguous region blocks; must be in ``[1, num_nodes]``.
    intra_probability:
        Edge probability for same-region pairs.
    inter_probability:
        Edge probability for cross-region pairs.
    rng:
        Seed / generator.

    Examples
    --------
    >>> g = regional_graph(60, 3, rng=5)
    >>> g.is_connected()
    True
    >>> from repro.network.conditions import block_regions
    >>> regions = block_regions(60, 3)
    >>> intra = sum(1 for u, v in g.edges() if regions[u] == regions[v])
    >>> intra > g.num_edges - intra  # regions are denser than cross links
    True
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if not 1 <= num_regions <= num_nodes:
        raise ValueError(
            f"num_regions must be in [1, {num_nodes}], got {num_regions}"
        )
    check_probability(intra_probability, "intra_probability")
    check_probability(inter_probability, "inter_probability")
    generator = as_generator(rng)
    regions = block_regions(num_nodes, num_regions)

    rows, cols = np.triu_indices(num_nodes, k=1)
    same = regions[rows] == regions[cols]
    probs = np.where(same, intra_probability, inter_probability)
    mask = generator.random(rows.shape[0]) < probs
    edge_set = set(zip(rows[mask].tolist(), cols[mask].tolist()))
    # Deterministic connectivity spine: a path through each block plus a
    # bridge between consecutive blocks (their boundary nodes).
    for u in range(num_nodes - 1):
        if regions[u] == regions[u + 1]:
            edge_set.add((u, u + 1))
    boundaries = np.flatnonzero(np.diff(regions)).tolist()
    for u in boundaries:
        edge_set.add((u, u + 1))
    return Graph(num_nodes, sorted(edge_set))


def _repair_pairing(pairs: List[List[int]], generator, max_swaps: int) -> bool:
    """Fix self-loops/duplicate edges in a stub pairing by random swaps.

    A conflicting pair trades one endpoint with a uniformly random other
    pair; the trade is kept only if it does not create new conflicts.
    Returns whether a simple pairing was reached.
    """

    def key(pair: List[int]) -> Tuple[int, int]:
        return (pair[0], pair[1]) if pair[0] < pair[1] else (pair[1], pair[0])

    counts: dict = {}
    for pair in pairs:
        counts[key(pair)] = counts.get(key(pair), 0) + 1

    def is_bad(pair: List[int]) -> bool:
        return pair[0] == pair[1] or counts[key(pair)] > 1

    bad = [idx for idx, pair in enumerate(pairs) if is_bad(pair)]
    swaps = 0
    while bad and swaps < max_swaps:
        swaps += 1
        idx = bad[int(generator.integers(len(bad)))]
        other = int(generator.integers(len(pairs)))
        if other == idx:
            continue
        a, b = pairs[idx], pairs[other]
        # Propose swapping b's second endpoint into a.
        new_a = [a[0], b[1]]
        new_b = [b[0], a[1]]
        if new_a[0] == new_a[1] or new_b[0] == new_b[1]:
            continue
        counts[key(a)] -= 1
        counts[key(b)] -= 1
        if counts.get(key(new_a), 0) >= 1 or counts.get(key(new_b), 0) >= 1 or key(new_a) == key(new_b):
            counts[key(a)] += 1
            counts[key(b)] += 1
            continue
        counts[key(new_a)] = counts.get(key(new_a), 0) + 1
        counts[key(new_b)] = counts.get(key(new_b), 0) + 1
        pairs[idx][:] = new_a
        pairs[other][:] = new_b
        bad = [i for i, pair in enumerate(pairs) if is_bad(pair)]
    return not bad
