"""Degree-sequence tools: graphicality, Havel–Hakimi, power-law fitting.

These support two needs of the reproduction:

1. building the paper's Figure-2 example network from its published
   degree sequence (see :mod:`repro.network.topology_example`);
2. verifying that generated PA topologies really are power-law
   (``f(d) ~ d^-alpha``), which the convergence theorems assume.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.network.graph import Graph


def is_graphical(degrees: Sequence[int]) -> bool:
    """Erdős–Gallai test: can ``degrees`` be realised by a simple graph?

    Parameters
    ----------
    degrees:
        Proposed degree of every node (order irrelevant).

    Examples
    --------
    >>> is_graphical([3, 3, 2, 2, 2])
    True
    >>> is_graphical([5, 1, 1, 1])  # node wants more neighbours than exist
    False
    """
    seq = sorted((int(d) for d in degrees), reverse=True)
    if any(d < 0 for d in seq):
        return False
    if sum(seq) % 2 != 0:
        return False
    n = len(seq)
    prefix = 0
    for k in range(1, n + 1):
        prefix += seq[k - 1]
        tail = sum(min(d, k) for d in seq[k:])
        if prefix > k * (k - 1) + tail:
            return False
    return True


def havel_hakimi_graph(degrees: Sequence[int]) -> Graph:
    """Construct a simple graph realising ``degrees`` via Havel–Hakimi.

    The construction is deterministic: at each step the node with the
    largest remaining degree is connected to the next-largest ones.

    Raises
    ------
    ValueError
        If the sequence is not graphical.
    """
    if not is_graphical(degrees):
        raise ValueError(f"degree sequence is not graphical: {list(degrees)!r}")
    remaining: List[List[int]] = [[int(d), node] for node, d in enumerate(degrees)]
    edges: List[Tuple[int, int]] = []
    while True:
        remaining.sort(key=lambda pair: (-pair[0], pair[1]))
        head_degree, head_node = remaining[0]
        if head_degree == 0:
            break
        if head_degree > len(remaining) - 1:
            raise ValueError("sequence became non-graphical during construction")
        for entry in remaining[1 : head_degree + 1]:
            entry[0] -= 1
            if entry[0] < 0:
                raise ValueError("sequence became non-graphical during construction")
            edges.append((head_node, entry[1]))
        remaining[0][0] = 0
    return Graph(len(list(degrees)), edges)


def estimate_power_law_exponent(degrees: Sequence[int], d_min: int = 2) -> float:
    """Maximum-likelihood estimate of the power-law exponent ``alpha``.

    Uses the continuous-approximation Hill estimator

    ``alpha = 1 + n / sum(ln(d_i / (d_min - 0.5)))``

    over degrees ``>= d_min``. For PA graphs with ``m >= 2`` the estimate
    should land near the theoretical exponent 3; empirical P2P networks
    (Gnutella) report ``alpha ≈ 2.3``.

    Parameters
    ----------
    degrees:
        Observed degrees.
    d_min:
        Lower cut-off for the tail fit; degrees below it are ignored.

    Raises
    ------
    ValueError
        If fewer than two degrees survive the ``d_min`` cut-off.
    """
    if d_min < 1:
        raise ValueError(f"d_min must be >= 1, got {d_min}")
    tail = np.asarray([d for d in degrees if d >= d_min], dtype=np.float64)
    if tail.size < 2:
        raise ValueError(f"need at least 2 degrees >= d_min={d_min} to fit a power law")
    logs = np.log(tail / (d_min - 0.5))
    total = float(logs.sum())
    if total <= 0:
        raise ValueError("degenerate degree tail (all degrees equal d_min)")
    return 1.0 + tail.size / total


def degree_ccdf(degrees: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF of the degree distribution.

    Returns ``(values, ccdf)`` where ``ccdf[i] = P(D >= values[i])``.
    Useful for log-log plots / tail-shape assertions in tests.
    """
    arr = np.asarray(sorted(degrees), dtype=np.int64)
    if arr.size == 0:
        raise ValueError("empty degree sequence")
    values, first_index = np.unique(arr, return_index=True)
    ccdf = 1.0 - first_index / arr.size
    return values, ccdf


def mean_degree(degrees: Sequence[int]) -> float:
    """Arithmetic mean degree of the sequence."""
    arr = np.asarray(list(degrees), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty degree sequence")
    return float(arr.mean())


def theoretical_pa_exponent() -> float:
    """Exponent of the PA model's asymptotic degree law (``gamma = 3``)."""
    return 3.0


def log2_diameter_scale(num_nodes: int) -> float:
    """``log2(N)`` — the diameter scale Theorem 5.1 assumes for PA components."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    return math.log2(num_nodes) if num_nodes > 1 else 0.0
