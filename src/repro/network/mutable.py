"""Mutable peer overlay with stable ids and incremental CSR snapshots.

:class:`repro.network.graph.Graph` is deliberately immutable — the
gossip engines read its CSR arrays on the hot path and must never see a
topology change mid-round. A *dynamic* network (peers joining via
preferential attachment, peers leaving, edges being rewired) therefore
needs a second structure: :class:`MutableOverlay` holds the live
adjacency, applies mutations in O(degree), and materialises an immutable
:class:`Graph` per epoch via :meth:`MutableOverlay.snapshot`.

Two design points matter for the dynamic runtime built on top
(:mod:`repro.runtime`):

- **Stable peer ids.** Graph nodes are compact indices ``0..n-1`` and
  get renumbered when peers leave; overlay peers carry monotonically
  increasing *peer ids* that never change. ``snapshot()`` returns the
  graph together with the ``index -> peer id`` map, so per-peer state
  (reputations, gossip pairs) survives arbitrary churn.
- **Incremental CSR patching.** A snapshot is built by *patching* the
  previous snapshot's directed-edge arrays with the pending additions
  and removals (vectorised mask + concatenate + lexsort), then handing
  the result to :meth:`Graph.from_csr` with validation off. No per-edge
  Python loop ever runs again after the overlay exists, so an epoch with
  a few hundred churn events costs milliseconds even at 100 000 peers —
  versus re-running ``Graph.__init__``'s Python edge loop from scratch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator

Edge = Tuple[int, int]


def _undirected(u: int, v: int) -> Edge:
    """Canonical (min, max) form of an undirected edge key."""
    return (u, v) if u < v else (v, u)


class MutableOverlay:
    """Evolving P2P overlay: join / leave / rewire with graph snapshots.

    Construct via :meth:`from_graph` (wrap an existing topology) or
    :meth:`grow_preferential` (grow a fresh PA overlay). Peer ids start
    at ``0..n-1`` for the initial peers and increase monotonically for
    every subsequent :meth:`add_peer`; ids of departed peers are never
    reused.

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> overlay = MutableOverlay.from_graph(preferential_attachment_graph(20, m=2, rng=0))
    >>> newcomer = overlay.add_peer(m=2, rng=1)
    >>> former_neighbors = overlay.remove_peer(0, rng=1)
    >>> graph, peer_ids = overlay.snapshot()
    >>> graph.num_nodes == overlay.num_peers == 20
    True
    >>> int(peer_ids[-1]) == newcomer
    True
    """

    def __init__(self) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._next_pid = 0
        # Degrees / liveness indexed directly by peer id (grown on demand)
        # so degree-proportional sampling is one vectorised draw.
        self._deg = np.zeros(0, dtype=np.int64)
        self._alive = np.zeros(0, dtype=bool)
        self._num_edges = 0
        # Snapshot cache + pending deltas for incremental CSR patching.
        self._snap_rows = np.zeros(0, dtype=np.int64)  # directed, peer-id based
        self._snap_cols = np.zeros(0, dtype=np.int64)
        self._pending_add: Set[Edge] = set()
        self._pending_remove: Set[Edge] = set()
        self._cached_graph: Optional[Graph] = None
        self._cached_pids: Optional[np.ndarray] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "MutableOverlay":
        """Wrap an existing :class:`Graph`; node ``i`` becomes peer id ``i``."""
        overlay = cls()
        n = graph.num_nodes
        overlay._next_pid = n
        overlay._deg = np.array(graph.degrees, dtype=np.int64)
        overlay._alive = np.ones(n, dtype=bool)
        overlay._adj = {u: set(int(v) for v in graph.neighbors(u)) for u in range(n)}
        overlay._num_edges = graph.num_edges
        overlay._snap_rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.indptr)
        )
        overlay._snap_cols = np.array(graph.indices, dtype=np.int64)
        overlay._cached_graph = graph
        overlay._cached_pids = np.arange(n, dtype=np.int64)
        return overlay

    @classmethod
    def grow_preferential(cls, num_nodes: int, m: int = 2, *, rng: RngLike = None) -> "MutableOverlay":
        """Grow a fresh preferential-attachment overlay of ``num_nodes`` peers."""
        from repro.network.preferential_attachment import preferential_attachment_graph

        return cls.from_graph(preferential_attachment_graph(num_nodes, m=m, rng=rng))

    # -- accessors -----------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Number of live peers."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of live undirected edges."""
        return self._num_edges

    @property
    def max_peer_id(self) -> int:
        """Largest peer id ever assigned (``-1`` before any peer exists)."""
        return self._next_pid - 1

    def has_peer(self, peer_id: int) -> bool:
        """Whether ``peer_id`` is currently in the overlay."""
        return peer_id in self._adj

    def degree_of(self, peer_id: int) -> int:
        """Current degree of a live peer."""
        return len(self._adj[peer_id])

    def neighbors_of(self, peer_id: int) -> Tuple[int, ...]:
        """Sorted neighbour peer ids of a live peer."""
        return tuple(sorted(self._adj[peer_id]))

    def peer_ids(self) -> np.ndarray:
        """Live peer ids, ascending (the ``snapshot()`` index order)."""
        return np.flatnonzero(self._alive).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge between peers ``u`` and ``v`` exists."""
        return u in self._adj and v in self._adj[u]

    def edges(self) -> List[Edge]:
        """Live undirected edges as canonical ``(min, max)`` pairs, sorted.

        A materialised list (not a generator), so callers may mutate the
        overlay while iterating — partition cuts remove edges mid-walk.
        """
        return sorted(
            (u, v) for u, nbrs in self._adj.items() for v in nbrs if u < v
        )

    def check_invariants(self) -> None:
        """Assert the overlay's internal counts describe one edge set.

        Verifies, in O(N + E):

        - the adjacency sets are symmetric and self-loop free;
        - ``num_edges`` equals the size of the undirected edge set;
        - the degree array matches each live peer's adjacency size and
          is zero for departed peers.

        Raises ``AssertionError`` on the first violation. Used by the
        hypothesis stateful suite after every mutation; cheap enough to
        call from application code when debugging overlay churn.
        """
        edge_set = set()
        for u, nbrs in self._adj.items():
            assert u not in nbrs, f"self-loop on peer {u}"
            assert self._alive[u], f"dead peer {u} still has an adjacency entry"
            assert self._deg[u] == len(nbrs), (
                f"degree array says {self._deg[u]} for peer {u}, adjacency has {len(nbrs)}"
            )
            for v in nbrs:
                assert v in self._adj and u in self._adj[v], f"asymmetric edge ({u}, {v})"
                edge_set.add(_undirected(u, v))
        assert self._num_edges == len(edge_set), (
            f"num_edges={self._num_edges} but the edge set has {len(edge_set)} edges"
        )
        dead = np.flatnonzero(~self._alive[: self._next_pid])
        assert not np.any(self._deg[dead]), "departed peers must have degree 0"

    def copy(self) -> "MutableOverlay":
        """Independent deep copy (peer ids, adjacency, pending deltas).

        Attack models poison *copies* of the world — a sybil flood joins
        its swarm to a copied overlay so the honest topology stays the
        clean-run baseline. The cached immutable snapshot (if any) is
        shared: :class:`Graph` is read-only and either copy invalidates
        its own cache on the next mutation.
        """
        clone = MutableOverlay()
        clone._adj = {peer: set(nbrs) for peer, nbrs in self._adj.items()}
        clone._next_pid = self._next_pid
        clone._deg = self._deg.copy()
        clone._alive = self._alive.copy()
        clone._num_edges = self._num_edges
        clone._snap_rows = self._snap_rows.copy()
        clone._snap_cols = self._snap_cols.copy()
        clone._pending_add = set(self._pending_add)
        clone._pending_remove = set(self._pending_remove)
        clone._cached_graph = self._cached_graph
        clone._cached_pids = self._cached_pids
        return clone

    # -- mutation ------------------------------------------------------------

    def _invalidate(self) -> None:
        self._cached_graph = None
        self._cached_pids = None

    def _require_peer(self, peer_id: int) -> None:
        if peer_id not in self._adj:
            raise KeyError(f"peer {peer_id} is not in the overlay")

    def _record_edge(self, u: int, v: int) -> bool:
        """Install the undirected edge ``(u, v)``; return whether it was new.

        An already-present edge is skipped *explicitly* (nothing is
        recounted): the adjacency sets would absorb a duplicate
        silently, but the degree array, the edge count and the pending
        snapshot deltas would all double-count it, corrupting every
        later snapshot. Internal rewiring paths (orphan rewires,
        component bridging) check this return value instead of assuming
        their proposal is fresh.
        """
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._deg[u] += 1
        self._deg[v] += 1
        self._num_edges += 1
        key = _undirected(u, v)
        if key in self._pending_remove:
            self._pending_remove.discard(key)  # back to the snapshot's state
        else:
            self._pending_add.add(key)
        self._invalidate()
        return True

    def _erase_edge(self, u: int, v: int) -> None:
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._deg[u] -= 1
        self._deg[v] -= 1
        self._num_edges -= 1
        key = _undirected(u, v)
        if key in self._pending_add:
            self._pending_add.discard(key)  # the snapshot never saw it
        else:
            self._pending_remove.add(key)
        self._invalidate()

    def add_edge(self, u: int, v: int) -> None:
        """Connect two live peers (rejects self-loops and duplicates)."""
        self._require_peer(u)
        self._require_peer(v)
        if u == v:
            raise ValueError(f"self-loop on peer {u} is not allowed")
        if v in self._adj[u]:
            raise ValueError(f"edge ({u}, {v}) already exists")
        self._record_edge(u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Disconnect two live peers (the edge must exist)."""
        self._require_peer(u)
        self._require_peer(v)
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) does not exist")
        self._erase_edge(u, v)

    def _sample_targets(
        self, count: int, rng: np.random.Generator, *, exclude: Iterable[int] = ()
    ) -> List[int]:
        """Draw ``count`` distinct live peers degree-proportionally.

        This is the preferential-attachment rule: an existing peer is
        chosen with probability proportional to its degree, so joins
        preserve the overlay's power-law shape. Falls back to uniform
        when the overlay has no edges yet.
        """
        excluded = tuple(exclude)
        weights = self._deg.astype(np.float64) * self._alive
        for pid in excluded:
            if pid < weights.shape[0]:
                weights[pid] = 0.0
        total = weights.sum()
        if total <= 0:
            candidates = np.flatnonzero(self._alive)
            if excluded:
                candidates = candidates[~np.isin(candidates, np.array(excluded, dtype=np.int64))]
            if candidates.shape[0] < count:
                raise ValueError("not enough live peers to attach to")
            picks = as_generator(rng).choice(candidates, size=count, replace=False)
            return [int(p) for p in picks]
        available = int(np.count_nonzero(weights > 0))
        if available < count:
            raise ValueError(
                f"cannot pick {count} distinct attachment targets from {available} candidates"
            )
        picks = rng.choice(weights.shape[0], size=count, replace=False, p=weights / total)
        return [int(p) for p in picks]

    def _grow_pid_arrays(self) -> None:
        if self._next_pid >= self._deg.shape[0]:
            new_capacity = max(16, 2 * self._deg.shape[0], self._next_pid + 1)
            deg = np.zeros(new_capacity, dtype=np.int64)
            alive = np.zeros(new_capacity, dtype=bool)
            deg[: self._deg.shape[0]] = self._deg
            alive[: self._alive.shape[0]] = self._alive
            self._deg, self._alive = deg, alive

    def add_peer(
        self,
        *,
        m: int = 2,
        rng: RngLike = None,
        targets: Optional[Iterable[int]] = None,
    ) -> int:
        """Join a new peer and return its peer id.

        Parameters
        ----------
        m:
            Edges the joiner brings; wired to ``min(m, num_peers)``
            distinct existing peers chosen degree-proportionally (the
            preferential-attachment join of the paper's Section 2).
        rng:
            Seed / generator for target selection.
        targets:
            Explicit attachment targets (overrides the PA draw).
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        generator = as_generator(rng)
        if targets is not None:
            chosen = [int(t) for t in targets]
            for t in chosen:
                self._require_peer(t)
            if len(set(chosen)) != len(chosen):
                raise ValueError("attachment targets must be distinct")
        elif self.num_peers == 0:
            chosen = []
        else:
            chosen = self._sample_targets(min(m, self.num_peers), generator)
        pid = self._next_pid
        self._next_pid += 1
        self._grow_pid_arrays()
        self._adj[pid] = set()
        self._alive[pid] = True
        self._deg[pid] = 0
        for t in chosen:
            self._record_edge(pid, t)
        self._invalidate()
        return pid

    def remove_peer(
        self,
        peer_id: int,
        *,
        rewire_isolated: bool = True,
        rng: RngLike = None,
    ) -> Tuple[int, ...]:
        """Depart ``peer_id``, dropping all its edges.

        Parameters
        ----------
        peer_id:
            The leaving peer.
        rewire_isolated:
            When the departure strands a neighbour at degree 0, wire the
            orphan to a fresh degree-proportional target (a stranded
            peer would silently drop out of the gossip — engines exclude
            isolated nodes from convergence).
        rng:
            Seed / generator for the rewiring draws.

        Returns
        -------
        tuple
            The former neighbours of the departed peer (the candidates a
            caller may hand the peer's gossip mass to).
        """
        self._require_peer(peer_id)
        if self.num_peers <= 2:
            raise ValueError("refusing to shrink the overlay below 2 peers")
        former = tuple(sorted(self._adj[peer_id]))
        for nb in former:
            self._erase_edge(peer_id, nb)
        del self._adj[peer_id]
        self._alive[peer_id] = False
        if rewire_isolated:
            generator = as_generator(rng)
            for nb in former:
                if nb in self._adj and not self._adj[nb]:
                    # The orphan has degree 0, so any live target is a
                    # fresh edge; re-draw defensively if a proposal is
                    # somehow already present rather than miscounting.
                    for _ in range(8):
                        target = self._sample_targets(1, generator, exclude=(nb,))[0]
                        if self._record_edge(nb, target):
                            break
        self._invalidate()
        return former

    def bridge_components(
        self, *, rng: RngLike = None, groups: "Optional[Dict[int, int]]" = None
    ) -> int:
        """Overlay maintenance: reconnect components churn split off.

        Departures can partition the overlay, and a partitioned overlay
        cannot aggregate globally — each island converges to its own
        mean. Real P2P overlays re-bridge via bootstrap/maintenance
        traffic; this method does the same in one sweep: every
        non-giant component gets one edge from a random member to a
        random member of the giant component. Returns the number of
        bridge edges added (0 when already connected).

        When ``groups`` is given (a mapping from peer id to group
        label), bridging is restricted to *within each group*: every
        group's non-giant components connect to that group's own giant.
        A scheduled partition (see
        :class:`repro.network.conditions.EpochPartition`) deliberately
        holds groups apart, so churn repair during an active partition
        must not re-join them — each fragment lies entirely inside one
        group once the cross-group edges are cut, and its repairs stay
        there. Peers missing from the mapping form their own singleton
        groups and are left untouched.
        """
        import scipy.sparse.csgraph

        graph, pids = self.snapshot()
        num_components, labels = scipy.sparse.csgraph.connected_components(
            graph.to_scipy_csr(), directed=False
        )
        if num_components <= 1:
            return 0
        generator = as_generator(rng)
        sizes = np.bincount(labels, minlength=num_components)
        if groups is None:
            component_pool = {0: list(range(num_components))}
        else:
            # Assign each component the group of its lowest-id member
            # (fragments are group-pure while a partition is active, and
            # a mixed fragment is already a cross-group path no bridge
            # can worsen).
            component_pool = {}
            for label in range(num_components):
                members = np.flatnonzero(labels == label)
                group = groups.get(int(pids[members[0]]), -1 - label)
                component_pool.setdefault(group, []).append(label)
        bridges = 0
        for pool in component_pool.values():
            if len(pool) <= 1:
                continue
            giant = max(pool, key=lambda label: (sizes[label], -label))
            giant_members = np.flatnonzero(labels == giant)
            for label in pool:
                if label == giant:
                    continue
                members = np.flatnonzero(labels == label)
                u = int(pids[members[generator.integers(members.shape[0])]])
                v = int(
                    pids[giant_members[generator.integers(giant_members.shape[0])]]
                )
                # u and v sit in different components, so (u, v) cannot
                # exist — but the skip is explicit, never an assumption
                # about _record_edge silently tolerating duplicates.
                if self._record_edge(u, v):
                    bridges += 1
        return bridges

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Tuple[Graph, np.ndarray]:
        """Materialise the current topology as ``(graph, peer_ids)``.

        ``peer_ids[i]`` is the peer id of graph node ``i`` (live peer
        ids in ascending order). The CSR arrays are patched from the
        previous snapshot — pending removals are masked out and pending
        additions appended, all vectorised — so successive snapshots of
        a large, mildly churning overlay cost O(E) numpy work, not a
        per-edge Python reconstruction.
        """
        if self._cached_graph is not None and self._cached_pids is not None:
            return self._cached_graph, self._cached_pids
        if self.num_peers == 0:
            raise ValueError("cannot snapshot an empty overlay")
        rows, cols = self._snap_rows, self._snap_cols
        if self._pending_remove:
            stride = self._next_pid
            removed = np.array(sorted(self._pending_remove), dtype=np.int64)
            gone = np.concatenate(
                [removed[:, 0] * stride + removed[:, 1], removed[:, 1] * stride + removed[:, 0]]
            )
            keep = ~np.isin(rows * stride + cols, gone)
            rows, cols = rows[keep], cols[keep]
        if self._pending_add:
            added = np.array(sorted(self._pending_add), dtype=np.int64)
            rows = np.concatenate([rows, added[:, 0], added[:, 1]])
            cols = np.concatenate([cols, added[:, 1], added[:, 0]])
        pids = self.peer_ids()
        n = pids.shape[0]
        r = np.searchsorted(pids, rows)
        c = np.searchsorted(pids, cols)
        order = np.lexsort((c, r))
        r, c = r[order], c[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(r, minlength=n), out=indptr[1:])
        graph = Graph.from_csr(n, indptr, c, validate=False)
        # The patched arrays become the next snapshot's baseline.
        self._snap_rows, self._snap_cols = rows, cols
        self._pending_add.clear()
        self._pending_remove.clear()
        self._cached_graph = graph
        self._cached_pids = pids
        return graph, pids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutableOverlay(num_peers={self.num_peers}, num_edges={self.num_edges})"
