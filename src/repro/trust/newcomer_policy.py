"""Dynamic newcomer-trust policy — the paper's other stated extension.

Section 4.1.2: the initial trust of an unknown identity is 0 to blunt
whitewashing, but *"this initial value can also be taken as higher than
zero and can be dynamically adjusted thereafter as per the level of
whitewashing in the network. In this paper, we have not studied this
aspect."* This module studies it.

:class:`DynamicNewcomerPolicy` grants newcomers a small benefit of the
doubt while the observed whitewashing rate is low (helping honest
latecomers bootstrap) and decays it toward zero as identity churn rises.
The dynamic-network runtime (:mod:`repro.runtime`) wires it in live:
every session arrival is observed by the policy and every joiner's
initial opinion comes from :meth:`DynamicNewcomerPolicy.initial_trust`.
The whitewashing *level* is estimated from the join rate relative to
the population — a surge of "new" identities in a stable population is
the signature of whitewashing (real networks cross-check against
population growth; the simulation knows its population is fixed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_probability, check_positive


@dataclass
class DynamicNewcomerPolicy:
    """Adjusts the initial trust granted to unknown identities.

    Parameters
    ----------
    max_initial_trust:
        Benefit of the doubt in a whitewash-free network.
    sensitivity:
        How many observed joins per capita drive the grant to ~zero;
        e.g. ``5.0`` means a join rate of 20% of the population per
        window roughly halves the grant.
    window:
        Length of the observation window in simulation time units.

    Examples
    --------
    >>> policy = DynamicNewcomerPolicy(max_initial_trust=0.3)
    >>> policy.initial_trust()  # clean network: full benefit of the doubt
    0.3
    >>> for _ in range(30):
    ...     policy.observe_join(now=1.0, population=100)
    >>> policy.initial_trust() < 0.15
    True
    """

    max_initial_trust: float = 0.2
    sensitivity: float = 5.0
    window: float = 100.0
    _joins: list = field(default_factory=list, init=False, repr=False)
    _last_population: int = field(default=1, init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability(self.max_initial_trust, "max_initial_trust")
        check_positive(self.sensitivity, "sensitivity")
        check_positive(self.window, "window")

    def observe_join(self, *, now: float, population: int) -> None:
        """Record one identity join (genuine newcomer or whitewash — the
        network cannot tell, which is the whole problem)."""
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        self._joins.append(float(now))
        self._last_population = int(population)
        self._expire(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        self._joins = [t for t in self._joins if t > cutoff]

    def join_rate(self, *, now: float | None = None) -> float:
        """Joins per capita inside the current window."""
        if now is not None:
            self._expire(now)
        return len(self._joins) / self._last_population

    def initial_trust(self, *, now: float | None = None) -> float:
        """Trust granted to a fresh identity right now.

        Decays hyperbolically in the per-capita join rate:
        ``max_initial_trust / (1 + sensitivity * 100 * rate)`` — i.e.
        ``sensitivity`` is the attenuation per 1% of the population
        joining within the window. A quiet network grants the full
        benefit of the doubt; a churning one approaches the paper's
        hard zero.
        """
        rate = self.join_rate(now=now)
        return self.max_initial_trust / (1.0 + self.sensitivity * 100.0 * rate)
