"""Trust estimation from transaction outcomes.

The paper treats estimation as a solved sub-problem (its companion work,
"Trust estimation in peer-to-peer network using BLUE", ref. [20]) and
only requires that every estimator emit ``t_ij`` in ``[0, 1]``. To keep
the reproduction self-contained we implement three estimators that cover
the design space:

- :class:`SuccessRatioEstimator` — the classic smoothed success ratio;
- :class:`BetaTrustEstimator` — Bayesian Beta-posterior mean, the
  standard reputation estimator (Jøsang's beta reputation);
- :class:`BlueTrustEstimator` — a Best-Linear-Unbiased-Estimator-style
  minimum-variance combination of noisy satisfaction observations,
  standing in for ref. [20].

All estimators are incremental: feed them outcomes one at a time, read
``estimate`` any time. They also support exponential forgetting so that
behaviour *change* (a peer turning free rider) shows up in ``t_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class TransactionOutcome:
    """Result of one transaction with a peer.

    Attributes
    ----------
    satisfaction:
        Observed quality of service in ``[0, 1]`` (1 = perfect transfer).
    variance:
        Optional observation-noise variance, used by the BLUE estimator
        to down-weight noisy observations (e.g. tiny transfers).
    """

    satisfaction: float
    variance: Optional[float] = None

    def __post_init__(self) -> None:
        check_probability(self.satisfaction, "satisfaction")
        if self.variance is not None:
            check_positive(self.variance, "variance")


class SuccessRatioEstimator:
    """Smoothed success-ratio trust estimate.

    ``t = (decayed satisfaction sum + prior) / (decayed count + 2*prior)``

    With ``prior_strength = 0`` this is the raw mean satisfaction; a
    positive prior pulls early estimates toward 0.5 so a single lucky
    transaction does not saturate trust.

    Parameters
    ----------
    decay:
        Exponential forgetting factor in ``(0, 1]`` applied to history
        before each new observation (1.0 = never forget).
    prior_strength:
        Pseudo-count weight of the 0.5 prior.
    """

    __slots__ = ("_decay", "_prior", "_weighted_sum", "_weighted_count")

    def __init__(self, *, decay: float = 1.0, prior_strength: float = 0.0):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay!r}")
        if prior_strength < 0:
            raise ValueError(f"prior_strength must be >= 0, got {prior_strength!r}")
        self._decay = float(decay)
        self._prior = float(prior_strength)
        self._weighted_sum = 0.0
        self._weighted_count = 0.0

    @property
    def num_observations(self) -> float:
        """Decayed observation count."""
        return self._weighted_count

    def record(self, outcome: TransactionOutcome) -> None:
        """Fold one transaction outcome into the estimate."""
        self._weighted_sum = self._weighted_sum * self._decay + outcome.satisfaction
        self._weighted_count = self._weighted_count * self._decay + 1.0

    @property
    def estimate(self) -> float:
        """Current trust estimate in ``[0, 1]`` (0.0 before any data, no prior)."""
        numerator = self._weighted_sum + 0.5 * 2.0 * self._prior
        denominator = self._weighted_count + 2.0 * self._prior
        if denominator == 0.0:
            return 0.0
        return min(1.0, max(0.0, numerator / denominator))


class BetaTrustEstimator:
    """Beta-posterior mean over binarised transaction outcomes.

    A transaction with satisfaction ``s`` contributes ``s`` fractional
    success and ``1 - s`` fractional failure, generalising the classic
    success/failure Beta update to graded outcomes:

    ``t = (alpha + successes) / (alpha + beta + successes + failures)``

    Parameters
    ----------
    alpha, beta:
        Prior pseudo-counts. The paper's whitewashing defence wants new
        identities to start at trust ~0, so the default prior is skewed
        toward failure (``alpha=0, beta=1``); pass ``alpha=1, beta=1``
        for the uninformed uniform prior.
    decay:
        Exponential forgetting factor in ``(0, 1]``.
    """

    __slots__ = ("_alpha0", "_beta0", "_decay", "_successes", "_failures")

    def __init__(self, *, alpha: float = 0.0, beta: float = 1.0, decay: float = 1.0):
        if alpha < 0 or beta < 0 or alpha + beta == 0:
            raise ValueError(f"prior (alpha={alpha}, beta={beta}) must be non-negative and non-degenerate")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay!r}")
        self._alpha0 = float(alpha)
        self._beta0 = float(beta)
        self._decay = float(decay)
        self._successes = 0.0
        self._failures = 0.0

    def record(self, outcome: TransactionOutcome) -> None:
        """Fold one transaction outcome into the posterior."""
        self._successes = self._successes * self._decay + outcome.satisfaction
        self._failures = self._failures * self._decay + (1.0 - outcome.satisfaction)

    @property
    def estimate(self) -> float:
        """Posterior-mean trust in ``[0, 1]``."""
        alpha = self._alpha0 + self._successes
        beta = self._beta0 + self._failures
        return alpha / (alpha + beta)

    @property
    def num_observations(self) -> float:
        """Decayed observation count."""
        return self._successes + self._failures


class BlueTrustEstimator:
    """Minimum-variance (BLUE-style) linear combination of observations.

    Stands in for the estimator of ref. [20]: each observation ``x_k``
    carries a noise variance ``sigma_k^2`` and the estimate is the
    variance-weighted mean

    ``t = (sum x_k / sigma_k^2) / (sum 1 / sigma_k^2)``,

    which is the Best Linear Unbiased Estimator for a constant signal in
    uncorrelated noise. Observations without an explicit variance use
    ``default_variance``.

    Parameters
    ----------
    default_variance:
        Variance assumed for outcomes that do not specify one.
    decay:
        Exponential forgetting factor in ``(0, 1]`` applied to both
        accumulators, so stale precision does not pin the estimate.
    """

    __slots__ = ("_default_variance", "_decay", "_weighted_sum", "_precision_sum")

    def __init__(self, *, default_variance: float = 0.05, decay: float = 1.0):
        check_positive(default_variance, "default_variance")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay!r}")
        self._default_variance = float(default_variance)
        self._decay = float(decay)
        self._weighted_sum = 0.0
        self._precision_sum = 0.0

    def record(self, outcome: TransactionOutcome) -> None:
        """Fold one transaction outcome into the combination."""
        variance = outcome.variance if outcome.variance is not None else self._default_variance
        precision = 1.0 / variance
        self._weighted_sum = self._weighted_sum * self._decay + outcome.satisfaction * precision
        self._precision_sum = self._precision_sum * self._decay + precision

    @property
    def estimate(self) -> float:
        """Variance-weighted mean satisfaction (0.0 before any data)."""
        if self._precision_sum == 0.0:
            return 0.0
        return min(1.0, max(0.0, self._weighted_sum / self._precision_sum))

    @property
    def num_observations(self) -> float:
        """Sum of decayed precisions (effective evidence mass)."""
        return self._precision_sum
