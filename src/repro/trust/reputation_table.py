"""Per-node reputation table.

Section 3: *"every node maintains a reputation table [of] the nodes with
whom it has interacted. Whenever it receives a resource from some node,
it adjusts the reputation of that node accordingly."*

:class:`ReputationTable` is that table for one node: a mapping from peer
id to an incremental trust estimator, plus the bookkeeping the gossip
protocol needs — when an opinion last changed (the ``delta`` re-push
rule of Algorithm 2) and when a peer was last heard from (stale opinions
are dropped, Section 4.1.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.trust.estimation import SuccessRatioEstimator, TransactionOutcome

EstimatorFactory = Callable[[], object]


class ReputationTable:
    """Direct-interaction trust table maintained by a single peer.

    Parameters
    ----------
    owner:
        Node id of the peer that owns this table (opinions about
        ``owner`` itself are rejected).
    estimator_factory:
        Zero-argument callable producing a fresh estimator per peer.
        Estimators must expose ``record(TransactionOutcome)`` and an
        ``estimate`` property (see :mod:`repro.trust.estimation`).
    stale_after:
        Opinions about peers not heard from for this many clock units
        are dropped by :meth:`prune_stale` (``None`` disables pruning).

    Examples
    --------
    >>> table = ReputationTable(owner=0)
    >>> table.record_transaction(3, TransactionOutcome(1.0), now=0.0)
    >>> table.trust_of(3)
    1.0
    >>> table.trust_of(7)  # never interacted
    0.0
    """

    def __init__(
        self,
        owner: int,
        *,
        estimator_factory: EstimatorFactory = SuccessRatioEstimator,
        stale_after: Optional[float] = None,
    ):
        if owner < 0:
            raise ValueError(f"owner must be a valid node id, got {owner}")
        if stale_after is not None and stale_after <= 0:
            raise ValueError(f"stale_after must be positive, got {stale_after}")
        self._owner = int(owner)
        self._estimator_factory = estimator_factory
        self._stale_after = stale_after
        self._estimators: Dict[int, object] = {}
        self._last_heard: Dict[int, float] = {}
        self._last_published: Dict[int, float] = {}

    # -- recording ------------------------------------------------------------

    @property
    def owner(self) -> int:
        """Node id owning this table."""
        return self._owner

    def record_transaction(self, peer: int, outcome: TransactionOutcome, *, now: float = 0.0) -> None:
        """Fold a transaction with ``peer`` into its trust estimate."""
        if peer == self._owner:
            raise ValueError(f"node {self._owner} cannot rate itself")
        if peer < 0:
            raise ValueError(f"peer must be a valid node id, got {peer}")
        estimator = self._estimators.get(peer)
        if estimator is None:
            estimator = self._estimator_factory()
            self._estimators[peer] = estimator
        estimator.record(outcome)
        self._last_heard[peer] = float(now)

    def heard_from(self, peer: int, *, now: float) -> None:
        """Refresh liveness for ``peer`` without a transaction (e.g. a gossip push)."""
        if peer in self._estimators:
            self._last_heard[peer] = float(now)

    # -- queries --------------------------------------------------------------

    def trust_of(self, peer: int) -> float:
        """Direct trust in ``peer`` (0.0 if never interacted — the
        whitewash-resistant initial value of Section 4.1.2)."""
        estimator = self._estimators.get(peer)
        return float(estimator.estimate) if estimator is not None else 0.0

    def knows(self, peer: int) -> bool:
        """Whether this table holds a direct opinion about ``peer``."""
        return peer in self._estimators

    def peers(self) -> frozenset:
        """Set of peers with a direct opinion."""
        return frozenset(self._estimators)

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(peer, trust)`` pairs."""
        for peer, estimator in self._estimators.items():
            yield peer, float(estimator.estimate)

    def __len__(self) -> int:
        return len(self._estimators)

    # -- gossip-protocol support ----------------------------------------------

    def opinion_changed_since_publish(self, peer: int, delta: float) -> bool:
        """Whether the opinion about ``peer`` moved more than ``delta``
        since the last :meth:`mark_published`.

        Algorithm 2's pre-gossip phase re-pushes a feedback to neighbours
        only when it changed "by more than some constant Δ" — this is
        that test. A never-published opinion always counts as changed.
        """
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if peer not in self._estimators:
            return False
        published = self._last_published.get(peer)
        if published is None:
            return True
        return abs(self.trust_of(peer) - published) > delta

    def mark_published(self, peer: int) -> None:
        """Record that the current opinion about ``peer`` was pushed to neighbours."""
        if peer in self._estimators:
            self._last_published[peer] = self.trust_of(peer)

    def forget(self, peer: int) -> bool:
        """Drop the opinion about ``peer`` entirely (e.g. it whitewashed).

        Returns whether an opinion existed. The next interaction starts
        from scratch — exactly what a fresh identity looks like.
        """
        if peer not in self._estimators:
            return False
        del self._estimators[peer]
        self._last_heard.pop(peer, None)
        self._last_published.pop(peer, None)
        return True

    def prune_stale(self, *, now: float) -> frozenset:
        """Drop opinions about peers not heard from within ``stale_after``.

        Returns the set of dropped peer ids. Matches Section 4.1.2: *"If
        node will not hear from a node for a long time, it will assume
        that this node is no longer present and ... drop its feedback."*
        """
        if self._stale_after is None:
            return frozenset()
        dropped = {
            peer
            for peer, last in self._last_heard.items()
            if now - last > self._stale_after
        }
        for peer in dropped:
            del self._estimators[peer]
            del self._last_heard[peer]
            self._last_published.pop(peer, None)
        return frozenset(dropped)
