"""Sparse local trust matrix ``t_ij``.

Section 4 of the paper defines an ``N x N`` matrix where ``t_ij`` is the
trust node ``i`` places in node ``j`` from *direct interaction only*.
The matrix is sparse — a node transacts with a tiny fraction of the
network — so it is stored as a dict-of-dicts keyed by observer, with a
parallel by-target index so that "who has opined about ``j``" (the set
every gossip round starts from) is O(observers of j), not O(N^2).

Absent entries mean "never interacted". The paper maps that to an
initial trust of 0 to blunt whitewashing; the aggregation algorithms
distinguish "no entry" (gossip weight 0) from "entry with value 0.0"
(gossip weight 1), which is why the matrix keeps explicit zeros.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_probability, check_trust_value


class TrustMatrix:
    """Sparse ``N x N`` matrix of direct-interaction trust values.

    Parameters
    ----------
    num_nodes:
        Number of peers ``N``; valid ids are ``0 .. N-1``.

    Examples
    --------
    >>> t = TrustMatrix(3)
    >>> t.set(0, 1, 0.8)
    >>> t.get(0, 1)
    0.8
    >>> t.get(1, 0)  # never interacted -> no trust
    0.0
    >>> sorted(t.observers_of(1))
    [0]
    """

    __slots__ = ("_num_nodes", "_rows", "_by_target")

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._rows: Dict[int, Dict[int, float]] = {}
        self._by_target: Dict[int, set] = {}

    # -- mutation -------------------------------------------------------------

    def set(self, observer: int, target: int, value: float) -> None:
        """Record ``t_{observer,target} = value``.

        Self-trust is rejected: a node has no use for an opinion about
        itself and the gossip protocol never transports one.
        """
        self._check_pair(observer, target)
        check_trust_value(value, f"t[{observer},{target}]")
        self._rows.setdefault(observer, {})[target] = float(value)
        self._by_target.setdefault(target, set()).add(observer)

    def fold_report(self, observer: int, target: int, value: float) -> float:
        """Fold one streamed trust report; return the target's new aggregate.

        The ingest primitive of the reputation service
        (:mod:`repro.service`): the report overwrites
        ``t_{observer,target}`` — direct trust is the *latest* observed
        behaviour, not an average of stale reports — and the returned
        value is :meth:`column_mean_over_all` of ``target`` (eq. 1's
        ``R_global`` column aggregate), i.e. the published opinion the
        service re-announces for ``target``. Folding is pure state
        application, so any batching of the same report stream yields
        identical matrices and identical aggregates.

        Examples
        --------
        >>> t = TrustMatrix(4)
        >>> t.fold_report(0, 2, 0.8)
        0.2
        >>> round(t.fold_report(1, 2, 0.4), 6)
        0.3
        >>> round(t.fold_report(0, 2, 0.0), 6)  # observer 0 revises its report
        0.1
        """
        self.set(observer, target, value)
        return self.column_mean_over_all(target)

    def discard(self, observer: int, target: int) -> None:
        """Remove the ``(observer, target)`` entry if present."""
        row = self._rows.get(observer)
        if row is not None and target in row:
            del row[target]
            if not row:
                del self._rows[observer]
            observers = self._by_target[target]
            observers.discard(observer)
            if not observers:
                del self._by_target[target]

    # -- queries --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Matrix dimension ``N``."""
        return self._num_nodes

    @property
    def num_observations(self) -> int:
        """Number of explicit ``t_ij`` entries."""
        return sum(len(row) for row in self._rows.values())

    def get(self, observer: int, target: int, default: float = 0.0) -> float:
        """``t_{observer,target}``, or ``default`` if never interacted."""
        if observer == target:
            raise ValueError(f"self-trust t[{observer},{observer}] is undefined")
        self._check_ids(observer, target)
        return self._rows.get(observer, {}).get(target, default)

    def has(self, observer: int, target: int) -> bool:
        """Whether ``observer`` has an explicit opinion about ``target``."""
        self._check_ids(observer, target)
        return target in self._rows.get(observer, {})

    def row(self, observer: int) -> Dict[int, float]:
        """Copy of ``observer``'s opinions as ``{target: value}``."""
        self._check_ids(observer)
        return dict(self._rows.get(observer, {}))

    def column(self, target: int) -> Dict[int, float]:
        """All direct opinions about ``target`` as ``{observer: value}``."""
        self._check_ids(target)
        return {obs: self._rows[obs][target] for obs in self._by_target.get(target, ())}

    def observers_of(self, target: int) -> frozenset:
        """Set of nodes holding a direct opinion about ``target``."""
        self._check_ids(target)
        return frozenset(self._by_target.get(target, frozenset()))

    def column_sum(self, target: int) -> float:
        """``sum_i t_{i,target}`` over explicit observers."""
        return float(sum(self.column(target).values()))

    def column_mean_over_observers(self, target: int) -> float:
        """Mean opinion about ``target`` over its observers (0.0 if none)."""
        col = self.column(target)
        return float(sum(col.values()) / len(col)) if col else 0.0

    def column_mean_over_all(self, target: int) -> float:
        """Mean opinion about ``target`` over *all* ``N`` nodes (eq. 1).

        Non-observers contribute 0, matching the paper's
        ``R_global = (1/N) t^T 1`` definition.
        """
        return self.column_sum(target) / self._num_nodes

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate all entries as ``(observer, target, value)``."""
        for observer, row in self._rows.items():
            for target, value in row.items():
                yield observer, target, value

    # -- conversions ----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Dense ``(N, N)`` array with zeros for absent entries."""
        dense = np.zeros((self._num_nodes, self._num_nodes), dtype=np.float64)
        for observer, target, value in self.items():
            dense[observer, target] = value
        return dense

    def observation_mask(self) -> np.ndarray:
        """Boolean ``(N, N)`` array: True where an explicit entry exists."""
        mask = np.zeros((self._num_nodes, self._num_nodes), dtype=bool)
        for observer, target, _ in self.items():
            mask[observer, target] = True
        return mask

    def copy(self) -> "TrustMatrix":
        """Deep copy (attack models mutate copies, never originals)."""
        return self.resized(self._num_nodes)

    def resized(self, num_nodes: int) -> "TrustMatrix":
        """Deep copy with capacity grown to ``num_nodes``.

        Sybil-style attacks enlarge the world: the new identities get
        ids ``N .. num_nodes-1`` and start with no entries in either
        direction (strangers — the paper's implicit trust 0). Shrinking
        is rejected: entries about removed ids would dangle.
        """
        if num_nodes < self._num_nodes:
            raise ValueError(
                f"cannot shrink a trust matrix from {self._num_nodes} to {num_nodes} nodes"
            )
        clone = TrustMatrix(num_nodes)
        for observer, target, value in self.items():
            clone.set(observer, target, value)
        return clone

    @classmethod
    def from_dense(cls, dense: np.ndarray, mask: Optional[np.ndarray] = None) -> "TrustMatrix":
        """Build from a dense array.

        Parameters
        ----------
        dense:
            Square array of trust values.
        mask:
            Optional boolean array selecting which entries are explicit
            observations; defaults to the non-zero entries of ``dense``
            (plus nothing on the diagonal).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError(f"dense trust matrix must be square, got shape {dense.shape}")
        n = dense.shape[0]
        if mask is None:
            mask = dense != 0.0
        matrix = cls(n)
        for observer in range(n):
            for target in np.nonzero(mask[observer])[0]:
                if observer != target:
                    matrix.set(observer, int(target), float(dense[observer, target]))
        return matrix

    # -- internals ------------------------------------------------------------

    def _check_ids(self, *nodes: int) -> None:
        for node in nodes:
            if not 0 <= node < self._num_nodes:
                raise ValueError(f"node id {node} outside 0..{self._num_nodes - 1}")

    def _check_pair(self, observer: int, target: int) -> None:
        self._check_ids(observer, target)
        if observer == target:
            raise ValueError(f"self-trust t[{observer},{observer}] is not allowed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrustMatrix(num_nodes={self._num_nodes}, num_observations={self.num_observations})"


def complete_trust_matrix(num_nodes: int, *, rng: RngLike = None) -> TrustMatrix:
    """Fully observed trust matrix: every ordered pair has an opinion.

    Realises the paper's *heavily loaded* system model (Section 3) in the
    limit — every peer has transacted with every other, so each target
    has ``N - 1`` observers. Used by the collusion experiments, where a
    sparse observation pattern would let single colluders zero out a
    column and eq. 18's relative error would measure observation
    scarcity rather than the attack.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    generator = as_generator(rng)
    matrix = TrustMatrix(num_nodes)
    for observer in range(num_nodes):
        values = generator.random(num_nodes)
        for target in range(num_nodes):
            if observer != target:
                matrix.set(observer, target, float(values[target]))
    return matrix


def random_trust_matrix(
    graph: Graph,
    *,
    edge_probability: float = 1.0,
    extra_pairs: int = 0,
    rng: RngLike = None,
) -> TrustMatrix:
    """Generate a plausible trust matrix over a topology.

    Interaction follows the overlay: each adjacent pair has interacted
    (and thus holds mutual opinions) with probability
    ``edge_probability``; ``extra_pairs`` additional random non-adjacent
    ordered pairs model past interactions with now-distant peers. Values
    are uniform in ``[0, 1]``, the paper's admissible range.

    Parameters
    ----------
    graph:
        Overlay topology.
    edge_probability:
        Probability an edge carries mutual trust observations.
    extra_pairs:
        Number of additional random ordered observer/target pairs.
    rng:
        Seed / generator.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> trust = random_trust_matrix(example_network(), rng=5)
    >>> trust.num_nodes
    10
    >>> all(0.0 <= value <= 1.0 for _, _, value in trust.items())
    True
    """
    check_probability(edge_probability, "edge_probability")
    if extra_pairs < 0:
        raise ValueError(f"extra_pairs must be >= 0, got {extra_pairs}")
    generator = as_generator(rng)
    matrix = TrustMatrix(graph.num_nodes)
    for u, v in graph.edges():
        if edge_probability >= 1.0 or generator.random() < edge_probability:
            matrix.set(u, v, float(generator.random()))
            matrix.set(v, u, float(generator.random()))
    placed = 0
    while placed < extra_pairs:
        observer = int(generator.integers(graph.num_nodes))
        target = int(generator.integers(graph.num_nodes))
        if observer == target:
            continue
        matrix.set(observer, target, float(generator.random()))
        placed += 1
    return matrix
