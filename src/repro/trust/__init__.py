"""Trust substrate: local trust values, estimators and reputation tables.

The aggregation algorithms consume a sparse matrix of *local* trust
values ``t_ij`` — node ``i``'s direct-interaction estimate of node ``j``,
always in ``[0, 1]``. This package provides:

- :class:`repro.trust.matrix.TrustMatrix` — the sparse ``N x N`` matrix
  with the column/row views the aggregation variants need;
- :mod:`repro.trust.estimation` — estimators that turn transaction
  outcomes into ``t_ij`` (success-ratio, Beta posterior, BLUE-style
  minimum-variance combination; the paper defers estimation to its
  companion work [20], which we substitute here);
- :class:`repro.trust.reputation_table.ReputationTable` — the per-node
  table a peer maintains about the peers it has interacted with.
"""

from repro.trust.estimation import (
    BetaTrustEstimator,
    BlueTrustEstimator,
    SuccessRatioEstimator,
    TransactionOutcome,
)
from repro.trust.matrix import TrustMatrix, complete_trust_matrix, random_trust_matrix
from repro.trust.newcomer_policy import DynamicNewcomerPolicy
from repro.trust.reputation_table import ReputationTable

__all__ = [
    "TrustMatrix",
    "random_trust_matrix",
    "complete_trust_matrix",
    "DynamicNewcomerPolicy",
    "ReputationTable",
    "TransactionOutcome",
    "SuccessRatioEstimator",
    "BetaTrustEstimator",
    "BlueTrustEstimator",
]
