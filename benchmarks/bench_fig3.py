"""Benchmark E3 — Figure 3: differential vs normal push convergence.

Two benchmarks on the same 1000-node PA world; the paper's claim is the
*step* gap (differential converges in far fewer steps while total
message cost stays competitive). Steps and messages go to
``extra_info``; the assertion locks in the winner.
"""

import numpy as np

from repro.baselines.push_sum import normal_push_engine
from repro.core.vector_engine import VectorGossipEngine

XI = 1e-4


def test_fig3_differential_push(benchmark, bench_graph, bench_values):
    n = bench_graph.num_nodes

    def run():
        return VectorGossipEngine(bench_graph, rng=12).run(
            bench_values, np.ones(n), xi=XI
        )

    outcome = benchmark(run)
    benchmark.extra_info["steps"] = outcome.steps
    benchmark.extra_info["push_messages"] = outcome.push_messages


def test_fig3_normal_push_baseline(benchmark, bench_graph, bench_values):
    n = bench_graph.num_nodes

    def run():
        return normal_push_engine(bench_graph, rng=12).run(
            bench_values, np.ones(n), xi=XI
        )

    outcome = benchmark(run)
    benchmark.extra_info["steps"] = outcome.steps
    benchmark.extra_info["push_messages"] = outcome.push_messages


def test_fig3_differential_wins_steps(benchmark, bench_graph, bench_values):
    """The headline comparison as one measurement: steps ratio > 1."""
    n = bench_graph.num_nodes

    def run():
        diff = VectorGossipEngine(bench_graph, rng=13).run(bench_values, np.ones(n), xi=XI)
        push = normal_push_engine(bench_graph, rng=13).run(bench_values, np.ones(n), xi=XI)
        return diff, push

    diff, push = benchmark(run)
    assert diff.steps < push.steps  # the paper's Figure-3 ordering
    benchmark.extra_info["step_ratio_push_over_diff"] = round(push.steps / diff.steps, 3)
