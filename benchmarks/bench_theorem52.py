"""Benchmark E7 — Theorem 5.2: potential-decay measurement.

Times the contribution-matrix instrument and checks the geometric decay
(psi_0 = N - 1, psi halving-ish per step) the appendix proves.
"""

import pytest

from repro.analysis.potential import measure_potential_trajectory
from repro.network.preferential_attachment import preferential_attachment_graph

N = 128
STEPS = 20


def test_theorem52_potential_decay(benchmark):
    graph = preferential_attachment_graph(N, m=2, rng=18)

    def run():
        return measure_potential_trajectory(graph, STEPS, rng=19)

    trajectory = benchmark(run)
    assert trajectory.psi[0] == pytest.approx(N - 1)
    assert trajectory.psi[STEPS] < trajectory.psi[0] / 50  # geometric decay
    assert trajectory.weight_sum == pytest.approx(N)  # Proposition A.1
    benchmark.extra_info["psi_final"] = round(trajectory.psi[STEPS], 4)
