"""Ablation — the GCLR weighting under collusion (eq. 17's damping).

DESIGN.md's second ablation: the same attack measured with weighting on
(a=4) vs off (a=1, every weight 1). Eq. 17 predicts the weighted error
is the unweighted error shrunk by N/(N + sum(w-1)); the benchmark
asserts the ordering and reports the measured ratio.
"""

from repro.attacks.collusion import group_colluders, select_colluders
from repro.core.weights import WeightParams
from repro.experiments.collusion_common import measure_collusion


def test_ablation_weighting_damps_collusion(benchmark, collusion_graph, collusion_trust):
    n = collusion_graph.num_nodes
    attack = group_colluders(select_colluders(n, 0.4, rng=22), 5)
    targets = list(range(0, n, 3))

    def run():
        weighted, _ = measure_collusion(
            collusion_graph, collusion_trust, attack,
            params=WeightParams(a=4.0, b=1.0), targets=targets, use_gossip=False,
        )
        unweighted, _ = measure_collusion(
            collusion_graph, collusion_trust, attack,
            params=WeightParams(a=1.0, b=1.0), targets=targets, use_gossip=False,
        )
        return weighted, unweighted

    weighted, unweighted = benchmark(run)
    assert weighted <= unweighted * 1.01  # weighting never amplifies the attack
    benchmark.extra_info["rms_weighted"] = round(weighted, 4)
    benchmark.extra_info["rms_unweighted"] = round(unweighted, 4)
    if unweighted > 0:
        benchmark.extra_info["damping"] = round(weighted / unweighted, 4)
