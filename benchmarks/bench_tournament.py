"""Benchmark: the algorithm × scenario × attack tournament leaderboard.

Thin CLI over :func:`repro.experiments.tournament.build_leaderboard`:
every registered algorithm runs on the same scenario-derived worlds and
faces the same seeded adversaries, producing ``BENCH_tournament.json``
with one cell per (scenario × algorithm × backend) — accuracy against
the algorithm's own exact aggregate, rounds, messages under the
adapter's documented counting rule, wall-clock, and per-attack-family
eq.-18 shift + eq.-17 amplification — plus the cross-scenario
leaderboard ranked by mean amplification.

Usage::

    PYTHONPATH=src python benchmarks/bench_tournament.py \
        [--small] [--seed 2016] [--xi 1e-4] [--targets 20] \
        [--algorithms all] [--scenarios all] [--attacks all] \
        [--backends dense,sparse] [--out BENCH_tournament.json]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.tournament import (
    DEFAULT_ATTACKS,
    build_leaderboard,
    write_record,
)
from repro.utils.hardware import host_metadata


def _csv(value: str):
    return tuple(part.strip() for part in value.split(",") if part.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true",
        help="CI-smoke scale (the committed artifact's default shape)",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--xi", type=float, default=1e-4)
    parser.add_argument("--targets", type=int, default=20)
    parser.add_argument(
        "--algorithms", default="all",
        help="comma-separated registered algorithm names, or 'all'",
    )
    parser.add_argument(
        "--scenarios", default="all",
        help="comma-separated scenario names providing the worlds, or 'all'",
    )
    parser.add_argument(
        "--attacks", default="all",
        help="comma-separated attack families (bench default params), or 'all'",
    )
    parser.add_argument("--backends", default="dense,sparse")
    parser.add_argument("--out", default="BENCH_tournament.json")
    args = parser.parse_args(argv)

    attacks = None
    if args.attacks != "all":
        unknown = [f for f in _csv(args.attacks) if f not in DEFAULT_ATTACKS]
        if unknown:
            parser.error(
                f"no bench parameters for families {unknown}; "
                f"known: {sorted(DEFAULT_ATTACKS)}"
            )
        attacks = {f: DEFAULT_ATTACKS[f] for f in _csv(args.attacks)}

    record = build_leaderboard(
        seed=args.seed,
        small=args.small,
        xi=args.xi,
        num_targets=args.targets,
        algorithms=None if args.algorithms == "all" else _csv(args.algorithms),
        scenarios=None if args.scenarios == "all" else _csv(args.scenarios),
        attacks=attacks,
        backends=_csv(args.backends),
        progress=True,
    )
    record.update(host_metadata())
    write_record(record, args.out)
    print(f"wrote {args.out} ({len(record['cells'])} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
