"""Benchmark: the serving layer — query QPS, ingest throughput, staleness.

Three measurements against a live :class:`repro.service.ReputationService`:

1. **Query QPS** — lock-free ``get_reputation`` reads from the current
   immutable snapshot (single-threaded and under reader threads while
   the service loop keeps swapping snapshots).
2. **Ingest throughput** — reports/second through the bounded queue and
   fold path, driven to completion with backpressure retries.
3. **Staleness vs epoch rate** — the operational trade-off: throttling
   the tick interval (fewer, larger folds) raises the staleness bound
   of every published snapshot; the curve records max/mean staleness
   and effective fold cost at each simulated interval.

Writes ``BENCH_service.json``. Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--peers 2000] [--reports 50000] [--backend auto] [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Dict, List

from repro.service.reports import generate_reports
from repro.service.service import ReputationService, ServiceLoop
from repro.utils.hardware import host_metadata


def _fresh_service(args, *, batch_size: int, high_watermark: int) -> ReputationService:
    return ReputationService(
        args.peers,
        backend=args.backend,
        seed=args.seed,
        batch_size=batch_size,
        high_watermark=high_watermark,
        attachment_m=2,
    )


def bench_query_qps(args) -> Dict[str, object]:
    """Snapshot read rate, idle and under concurrent snapshot swaps."""
    service = _fresh_service(args, batch_size=512, high_watermark=1 << 20)
    reports = generate_reports(min(args.reports, 20_000), args.peers, rng=args.seed)
    service.submit_batch(reports)
    service.drain_pending()

    # Single-threaded reads against a quiescent snapshot.
    samples = args.query_samples
    start = time.perf_counter()
    for i in range(samples):
        service.get_reputation(i % args.peers)
    idle_qps = samples / (time.perf_counter() - start)

    # Reads while the loop swaps snapshots (writer active).
    loop = ServiceLoop(service, idle_sleep=0.0005).start()
    counts: List[int] = []

    def reader() -> None:
        count = 0
        deadline = time.perf_counter() + args.contended_seconds
        while time.perf_counter() < deadline:
            service.get_reputation(count % args.peers)
            count += 1
        counts.append(count)

    threads = [threading.Thread(target=reader) for _ in range(args.readers)]
    start_version = service.snapshot().version
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    loop.stop()
    swapped = service.snapshot().version - start_version
    return {
        "idle_qps": round(idle_qps, 1),
        "contended_qps_total": round(sum(counts) / args.contended_seconds, 1),
        "reader_threads": args.readers,
        "snapshot_swaps_during_read": int(swapped),
        "query_samples": samples,
    }


def bench_ingest(args) -> Dict[str, object]:
    """Reports/second through queue + fold + epoch, with backpressure retries."""
    service = _fresh_service(args, batch_size=1024, high_watermark=4096)
    reports = generate_reports(args.reports, args.peers, rng=args.seed + 1)
    shed_events = 0
    start = time.perf_counter()
    cursor = 0
    while cursor < len(reports):
        chunk = reports[cursor : cursor + 512]
        accepted = service.submit_batch(chunk)
        cursor += accepted
        if accepted < len(chunk):
            shed_events += 1
            service.tick()
    ticks = service.drain_pending()
    elapsed = time.perf_counter() - start
    return {
        "reports": args.reports,
        "elapsed_seconds": round(elapsed, 3),
        "reports_per_second": round(args.reports / elapsed, 1),
        "ticks": len(ticks) + shed_events,
        "shed_events": shed_events,
        "queue_rejected_total": service.queue.rejected_total,
    }


def bench_staleness_curve(args) -> List[Dict[str, object]]:
    """Staleness bound vs epoch (tick) rate, one point per arrival cadence.

    Fold capacity is fixed (``--batch-size`` reports per tick); the
    arrival rate between consecutive ticks sweeps ``--curve``. A tick
    rate above the arrival rate keeps every snapshot's staleness bound
    at ~0; once arrivals outpace the fold, the backlog — and with it the
    published staleness bound — grows with every tick until the stream
    ends and trailing ticks drain it. That backlog-vs-epoch-rate knee is
    the operational quantity ``docs/service.md`` discusses.
    """
    curve: List[Dict[str, object]] = []
    stream = generate_reports(args.reports, args.peers, rng=args.seed + 2)
    for arrivals_per_tick in args.curve:
        service = _fresh_service(
            args, batch_size=args.batch_size, high_watermark=len(stream) + 1
        )
        staleness: List[int] = []
        epoch_steps: List[int] = []
        cursor = 0
        while cursor < len(stream):
            cursor += service.submit_batch(stream[cursor : cursor + arrivals_per_tick])
            record = service.tick()
            staleness.append(record.staleness)
            epoch_steps.append(record.epoch_steps)
        for record in service.drain_pending():
            staleness.append(record.staleness)
            epoch_steps.append(record.epoch_steps)
        curve.append({
            "arrivals_per_tick": arrivals_per_tick,
            "fold_capacity_per_tick": args.batch_size,
            "ticks": len(staleness),
            "max_staleness": max(staleness),
            "mean_staleness": round(sum(staleness) / len(staleness), 1),
            "mean_epoch_steps": round(sum(epoch_steps) / len(epoch_steps), 2),
            "total_epoch_steps": sum(epoch_steps),
        })
    return curve


def run_benchmark(args) -> Dict[str, object]:
    """All three measurements; returns the JSON-friendly record."""
    service = _fresh_service(args, batch_size=512, high_watermark=1024)
    record = {
        "benchmark": "service",
        "peers": args.peers,
        "reports": args.reports,
        "backend": service.backend,
        "seed": args.seed,
        "query": bench_query_qps(args),
        "ingest": bench_ingest(args),
        "staleness_vs_epoch_rate": bench_staleness_curve(args),
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=2000)
    parser.add_argument("--reports", type=int, default=50_000)
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--query-samples", type=int, default=200_000)
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--contended-seconds", type=float, default=1.0)
    parser.add_argument("--batch-size", type=int, default=512,
                        help="fold capacity per tick in the staleness curve")
    parser.add_argument(
        "--curve",
        type=int,
        nargs="+",
        default=[128, 512, 2048, 8192],
        help="arrivals between ticks, one staleness-curve point each",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    record = run_benchmark(args)
    record.update(host_metadata(required_workers=args.readers))
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    query, ingest = record["query"], record["ingest"]
    print(
        f"peers={record['peers']} backend={record['backend']}: "
        f"query {query['idle_qps']:.0f} qps idle / "
        f"{query['contended_qps_total']:.0f} qps with {query['reader_threads']} readers "
        f"({query['snapshot_swaps_during_read']} snapshot swaps); "
        f"ingest {ingest['reports_per_second']:.0f} reports/s"
    )
    for point in record["staleness_vs_epoch_rate"]:
        print(
            f"  {point['arrivals_per_tick']:>6} arrivals/tick "
            f"(fold capacity {point['fold_capacity_per_tick']}) -> "
            f"max staleness {point['max_staleness']}, "
            f"mean epoch steps {point['mean_epoch_steps']}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
