"""Benchmark: sharded multi-process engine vs single-process sparse engine.

Builds one million-peer-class power-law overlay (the Batagelj–Brandes
fast PA generator, N=1M / E≈8M by default), then runs the identical
fixed-budget gossip burn (``run_to_max``) through the CSR sparse engine
and the sharded engine and records *marginal round throughput* — steps
per second with one-time setup (worker pool spawn, shard sampler
construction, padded-group building) subtracted out by differencing a
long run against a short one. ``BENCH_sharded.json`` carries both
engines' numbers, the speedup ratio, and the host context (CPU count,
start method): the ≥ 2.5× target at 4 workers presumes ≥ 4 physical
cores, so the artifact records whether the host could express the
parallelism at all rather than silently under-reporting the engine.

The script cross-checks that both engines land near the same
fully-mixed estimates and that gossip mass is conserved, so a speedup
obtained by computing the wrong thing fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py \
        [--n 1000000] [--m 8] [--steps 30] [--short-steps 4] \
        [--workers 4] [--shards 8] [--repeats 1] [--include-inline] \
        [--out BENCH_sharded.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

import numpy as np

from repro.core.sharded_engine import ShardedGossipEngine, _default_start_method
from repro.core.sparse_engine import SparseGossipEngine
from repro.network.partition import partition_graph
from repro.network.preferential_attachment import preferential_attachment_graph_fast

#: The acceptance bar: sharded round throughput vs sparse at 4 workers.
TARGET_SPEEDUP = 2.5


def _timed_run(make_engine, values, weights, steps: int, repeats: int):
    """Best wall-clock over ``repeats`` fixed-budget runs (fresh engine each)."""
    best = float("inf")
    outcome = None
    for _ in range(repeats):
        engine = make_engine()
        start = time.perf_counter()
        outcome = engine.run(
            values, weights, xi=1e-12, max_steps=steps, run_to_max=True
        )
        best = min(best, time.perf_counter() - start)
    return best, outcome


def _bench_engine(
    name: str,
    make_engine,
    values: np.ndarray,
    weights: np.ndarray,
    *,
    steps: int,
    short_steps: int,
    repeats: int,
) -> Dict[str, object]:
    """Marginal throughput via long-vs-short differencing."""
    short_elapsed, _ = _timed_run(make_engine, values, weights, short_steps, repeats)
    long_elapsed, outcome = _timed_run(make_engine, values, weights, steps, repeats)
    marginal = max(long_elapsed - short_elapsed, 1e-9)
    throughput = (steps - short_steps) / marginal
    print(
        f"  {name:16s} {steps} steps in {long_elapsed:.2f}s "
        f"({throughput:.2f} steps/s marginal, setup+{short_steps} steps {short_elapsed:.2f}s)"
    )
    return {
        "long_steps": steps,
        "long_seconds": round(long_elapsed, 4),
        "short_steps": short_steps,
        "short_seconds": round(short_elapsed, 4),
        "steps_per_second": round(throughput, 4),
        "push_messages": outcome.push_messages,
        "_outcome": outcome,  # consumed by the caller's cross-check
    }


def run_benchmark(
    n: int = 1_000_000,
    *,
    m: int = 8,
    steps: int = 30,
    short_steps: int = 4,
    workers: int = 4,
    shards: int = 8,
    repeats: int = 1,
    include_inline: bool = False,
    seed: int = 2016,
) -> Dict[str, object]:
    """One full comparison; returns the JSON-ready record."""
    if short_steps >= steps:
        raise ValueError(f"short_steps ({short_steps}) must be < steps ({steps})")
    build_start = time.perf_counter()
    graph = preferential_attachment_graph_fast(n, m=m, rng=seed)
    build_seconds = time.perf_counter() - build_start
    values = np.random.default_rng(seed + 1).random(n)
    weights = np.ones(n)
    truth = float(values.mean())
    partition = partition_graph(graph, shards)
    print(
        f"graph: N={graph.num_nodes} E={graph.num_edges} (built in {build_seconds:.1f}s); "
        f"{shards} shards, edge cut {partition.edge_cut():.1%}"
    )

    contenders = {
        "sparse": lambda: SparseGossipEngine(graph, rng=seed + 2),
        f"sharded_w{workers}": lambda: ShardedGossipEngine(
            graph, rng=seed + 2, num_shards=shards, num_workers=workers
        ),
    }
    if include_inline:
        contenders["sharded_w1"] = lambda: ShardedGossipEngine(
            graph, rng=seed + 2, num_shards=shards, num_workers=1
        )

    results: Dict[str, Dict[str, object]] = {}
    for name, make_engine in contenders.items():
        results[name] = _bench_engine(
            name,
            make_engine,
            values,
            weights,
            steps=steps,
            short_steps=short_steps,
            repeats=repeats,
        )

    # Cross-check: mass conservation + agreement on the mixed estimates.
    for name, record in results.items():
        outcome = record.pop("_outcome")
        if not np.isclose(outcome.values.sum(), values.sum(), rtol=1e-9):
            raise AssertionError(f"{name}: gossip value mass not conserved")
        if not np.isclose(outcome.weights.sum(), float(n), rtol=1e-9):
            raise AssertionError(f"{name}: gossip weight mass not conserved")
        errors = np.abs(outcome.estimates.reshape(-1) - truth)
        record["estimates_max_error"] = float(errors.max())
        record["estimates_mean_error"] = float(errors.mean())
        # Mixing needs ~log2(N) steps before the estimates mean anything;
        # gate only when the configured budget clears that bar (stragglers
        # keep the max noisy, so the mean carries the assertion).
        if steps >= int(np.ceil(np.log2(n))) + 6 and record["estimates_mean_error"] > 0.02:
            raise AssertionError(
                f"{name}: mean estimate error {record['estimates_mean_error']:.3g} "
                f"after {steps} steps — an engine is computing the wrong thing"
            )

    sharded_key = f"sharded_w{workers}"
    speedup = results[sharded_key]["steps_per_second"] / results["sparse"]["steps_per_second"]
    host_cpus = os.cpu_count() or 1
    record = {
        "benchmark": "sharded_vs_sparse",
        "n": n,
        "m": m,
        "num_edges": graph.num_edges,
        "steps": steps,
        "short_steps": short_steps,
        "repeats": repeats,
        "seed": seed,
        "shards": shards,
        "workers": workers,
        "edge_cut": round(partition.edge_cut(), 4),
        "graph_build_seconds": round(build_seconds, 2),
        "host_cpus": host_cpus,
        "start_method": _default_start_method(),
        "engines": results,
        "speedup_vs_sparse": round(speedup, 4),
        "target_speedup": TARGET_SPEEDUP,
        "target_met": bool(speedup >= TARGET_SPEEDUP),
        "parallelism_expressible": bool(host_cpus >= workers),
    }
    if host_cpus < workers:
        record["note"] = (
            f"host exposes {host_cpus} CPU(s) for {workers} workers: the measured "
            f"ratio reflects IPC/scheduling overhead, not the engine's parallel "
            f"scaling; re-run on >= {workers} cores for the target comparison"
        )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--m", type=int, default=8)
    parser.add_argument("--steps", type=int, default=30)
    parser.add_argument("--short-steps", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--include-inline", action="store_true")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", default="BENCH_sharded.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        args.n,
        m=args.m,
        steps=args.steps,
        short_steps=args.short_steps,
        workers=args.workers,
        shards=args.shards,
        repeats=args.repeats,
        include_inline=args.include_inline,
        seed=args.seed,
    )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sharded = record["engines"][f"sharded_w{record['workers']}"]
    sparse = record["engines"]["sparse"]
    print(
        f"N={record['n']} E={record['num_edges']} workers={record['workers']}: "
        f"sharded {sharded['steps_per_second']:.2f} steps/s vs sparse "
        f"{sparse['steps_per_second']:.2f} steps/s -> {record['speedup_vs_sparse']}x "
        f"(target {record['target_speedup']}x, host_cpus={record['host_cpus']})"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
