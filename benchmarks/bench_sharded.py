"""Benchmark: push kernels, dtypes, and sharded executors at million scale.

Builds million-peer-class power-law overlays (the Batagelj–Brandes fast
PA generator) and measures *marginal round throughput* — seconds per
gossip step with one-time setup (plan construction, worker spawn, state
concatenation) subtracted out — for two grids:

- **kernels** (``BENCH_kernels.json``): the sparse engine under every
  available push kernel (unfused reference, fused numpy, numba when the
  optional extra is installed) at float64 and float32, plus the sharded
  engine's inline vs threaded executors with the per-phase breakdown
  (sample / build-contributions / halo-merge / convergence) read off
  ``engine.last_phase_timings``;
- **sharded** (``BENCH_sharded.json``): the classic sharded-vs-sparse
  comparison (inline / threads / processes contenders), same phase
  breakdown.

Methodology: container wall-clock is non-stationary (factor-2 swings
between minutes are routine), so single long runs lie. Every contender
runs SHORT and LONG fixed budgets back-to-back, contenders interleave
round-robin within each repetition, the per-step cost is the *marginal*
``(long - short) / (steps_long - steps_short)`` of each pair, and
ratios are medians of per-repetition ratios — drift hits both sides of
a ratio in the same minute. The ``parallelism_expressible`` flag
records whether the host could express multi-worker parallelism at all
rather than silently under-reporting the engine.

The script cross-checks that every contender lands near the same
fully-mixed estimates and conserves gossip mass, so a speedup obtained
by computing the wrong thing fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py \
        [--n 1000000] [--m 8] [--kernel-m 8 16] [--steps 13] \
        [--short-steps 3] [--pairs 4] [--workers 4] [--shards 8] \
        [--skip-kernels | --skip-sharded] [--out BENCH_sharded.json] \
        [--kernels-out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.kernels import available_kernels
from repro.core.sharded_engine import ShardedGossipEngine, _default_start_method
from repro.core.sparse_engine import SparseGossipEngine
from repro.network.partition import partition_graph
from repro.network.preferential_attachment import preferential_attachment_graph_fast
from repro.utils.hardware import usable_cpu_count

#: Multi-core acceptance bar: sharded process-pool throughput vs sparse
#: at 4 workers (presumes >= 4 usable cores).
TARGET_SPEEDUP = 2.5

#: Single-core acceptance bar: fused kernel throughput vs the unfused
#: reference at N=1M.
FUSED_TARGET = 1.5


def _timed_run(make_engine, values, weights, steps: int):
    """(wall seconds, outcome, engine) of one fresh fixed-budget run."""
    engine = make_engine()
    start = time.perf_counter()
    outcome = engine.run(values, weights, xi=1e-12, max_steps=steps, run_to_max=True)
    return time.perf_counter() - start, outcome, engine


def _paired_marginal_grid(
    contenders: Dict[str, Callable[[], object]],
    values: np.ndarray,
    weights: np.ndarray,
    *,
    steps: int,
    short_steps: int,
    pairs: int,
) -> Dict[str, Dict[str, object]]:
    """Median marginal per-step seconds per contender, interleaved.

    Each repetition runs every contender's SHORT+LONG pair before the
    next repetition starts, so slow minutes of the host hit every
    contender roughly equally and per-repetition ratios stay honest.
    """
    if short_steps >= steps:
        raise ValueError(f"short_steps ({short_steps}) must be < steps ({steps})")
    marginals: Dict[str, List[float]] = {name: [] for name in contenders}
    results: Dict[str, Dict[str, object]] = {}
    for repetition in range(pairs):
        for name, make_engine in contenders.items():
            short_elapsed, _, _ = _timed_run(make_engine, values, weights, short_steps)
            long_elapsed, outcome, engine = _timed_run(make_engine, values, weights, steps)
            marginal = max(long_elapsed - short_elapsed, 1e-9) / (steps - short_steps)
            marginals[name].append(marginal)
            if repetition == pairs - 1:
                record: Dict[str, object] = {
                    "long_steps": steps,
                    "short_steps": short_steps,
                    "pairs": pairs,
                    "marginal_step_seconds": [round(m, 7) for m in marginals[name]],
                    "median_step_seconds": round(statistics.median(marginals[name]), 5),
                    "steps_per_second": round(
                        1.0 / statistics.median(marginals[name]), 4
                    ),
                    "push_messages": outcome.push_messages,
                    "_outcome": outcome,  # consumed by the caller's cross-check
                }
                phases = getattr(engine, "last_phase_timings", None)
                if phases is not None:
                    record["phase_seconds"] = {
                        key: round(value, 4) if isinstance(value, float) else value
                        for key, value in phases.items()
                    }
                results[name] = record
    for name in results:
        print(
            f"  {name:24s} median {results[name]['median_step_seconds']*1e3:8.1f} ms/step "
            f"({results[name]['steps_per_second']:.2f} steps/s marginal)"
        )
    return results


def _median_ratio(
    baseline: Dict[str, object], contender: Dict[str, object]
) -> float:
    """Throughput ratio contender/baseline, median of per-pair ratios."""
    # The recorded marginals are rounded for the JSON artifact; clamp the
    # denominator so a sub-resolution marginal (tiny-N smoke shapes)
    # cannot divide by zero.
    pairs = zip(baseline["marginal_step_seconds"], contender["marginal_step_seconds"])
    return round(statistics.median(base / max(cont, 1e-9) for base, cont in pairs), 4)


def _cross_check(
    results: Dict[str, Dict[str, object]],
    values: np.ndarray,
    *,
    steps: int,
    mass_rtol: Dict[str, float],
) -> None:
    """Mass conservation + agreement on the mixed estimates, per contender."""
    n = values.shape[0]
    truth = float(values.mean())
    for name, record in results.items():
        outcome = record.pop("_outcome")
        rtol = mass_rtol.get(name, 1e-9)
        if not np.isclose(float(outcome.values.astype(np.float64).sum()), values.sum(), rtol=rtol):
            raise AssertionError(f"{name}: gossip value mass not conserved")
        if not np.isclose(float(outcome.weights.astype(np.float64).sum()), float(n), rtol=rtol):
            raise AssertionError(f"{name}: gossip weight mass not conserved")
        errors = np.abs(outcome.estimates.reshape(-1).astype(np.float64) - truth)
        record["estimates_max_error"] = float(errors.max())
        record["estimates_mean_error"] = float(errors.mean())
        # Mixing needs ~log2(N) steps before the estimates mean anything;
        # gate only when the configured budget clears that bar (stragglers
        # keep the max noisy, so the mean carries the assertion).
        if steps >= int(np.ceil(np.log2(n))) + 6 and record["estimates_mean_error"] > 0.02:
            raise AssertionError(
                f"{name}: mean estimate error {record['estimates_mean_error']:.3g} "
                f"after {steps} steps — an engine is computing the wrong thing"
            )


def _build_graph(n: int, m: int, seed: int):
    build_start = time.perf_counter()
    graph = preferential_attachment_graph_fast(n, m=m, rng=seed)
    build_seconds = time.perf_counter() - build_start
    print(
        f"graph: N={graph.num_nodes} E={graph.num_edges} m={m} "
        f"(built in {build_seconds:.1f}s)"
    )
    return graph, build_seconds


def run_kernel_benchmark(
    n: int = 1_000_000,
    *,
    m_values: Optional[List[int]] = None,
    steps: int = 13,
    short_steps: int = 3,
    pairs: int = 4,
    shards: int = 8,
    seed: int = 2016,
) -> Dict[str, object]:
    """Kernel × dtype grid plus the sharded inline-vs-threads comparison."""
    m_values = m_values or [8, 16]
    host_cpus = usable_cpu_count()
    kernels = [name for name in ("unfused", "fused", "numba") if name in available_kernels()]
    grids: Dict[str, object] = {}
    for m in m_values:
        graph, build_seconds = _build_graph(n, m, seed)
        values = np.random.default_rng(seed + 1).random(n)
        weights = np.ones(n)

        contenders: Dict[str, Callable[[], object]] = {}
        mass_rtol: Dict[str, float] = {}
        for kernel in kernels:
            for dtype_name in ("float64", "float32"):
                if kernel == "unfused" and dtype_name == "float32":
                    continue  # the reference path is the float64 baseline
                key = f"sparse/{kernel}/{dtype_name}"
                dtype = np.dtype(dtype_name)
                contenders[key] = (
                    lambda kernel=kernel, dtype=dtype: SparseGossipEngine(
                        graph, rng=seed + 2, kernel=kernel, dtype=dtype
                    )
                )
                mass_rtol[key] = 1e-4 if dtype_name == "float32" else 1e-9
        for executor in ("inline", "threads"):
            key = f"sharded/{executor}/float64"
            contenders[key] = lambda executor=executor: ShardedGossipEngine(
                graph, rng=seed + 2, num_shards=shards, executor=executor
            )
            mass_rtol[key] = 1e-9

        print(f"kernel grid at m={m}: {', '.join(contenders)}")
        results = _paired_marginal_grid(
            contenders, values, weights, steps=steps, short_steps=short_steps, pairs=pairs
        )
        _cross_check(results, values, steps=steps, mass_rtol=mass_rtol)

        baseline = results["sparse/unfused/float64"]
        for key, record in results.items():
            record["engine"], record["kernel_or_executor"], record["dtype"] = key.split("/")
            if key != "sparse/unfused/float64" and record["engine"] == "sparse":
                record["speedup_vs_unfused_float64"] = _median_ratio(baseline, record)
        threads_vs_inline = _median_ratio(
            results["sharded/inline/float64"], results["sharded/threads/float64"]
        )
        fused = results["sparse/fused/float64"]
        grids[f"m{m}"] = {
            "m": m,
            "num_edges": graph.num_edges,
            "graph_build_seconds": round(build_seconds, 2),
            "contenders": results,
            "fused_float64_speedup": fused["speedup_vs_unfused_float64"],
            "fused_target": FUSED_TARGET,
            "fused_target_met": bool(
                fused["speedup_vs_unfused_float64"] >= FUSED_TARGET
            ),
            "sharded_threads_vs_inline": threads_vs_inline,
        }
        print(
            f"  m={m}: fused/f64 {fused['speedup_vs_unfused_float64']}x unfused "
            f"(target {FUSED_TARGET}x); sharded threads {threads_vs_inline}x inline"
        )
    return {
        "benchmark": "push_kernels",
        "n": n,
        "steps": steps,
        "short_steps": short_steps,
        "pairs": pairs,
        "seed": seed,
        "shards": shards,
        "host_cpus": host_cpus,
        "available_kernels": kernels,
        "parallelism_expressible": bool(host_cpus >= 2),
        "methodology": (
            "paired marginal differencing: per repetition each contender runs "
            "SHORT then LONG fixed budgets, marginal = (long-short)/(steps delta); "
            "ratios are medians of per-repetition ratios (robust to the "
            "non-stationary container clock)"
        ),
        "grids": grids,
    }


def run_benchmark(
    n: int = 1_000_000,
    *,
    m: int = 8,
    steps: int = 13,
    short_steps: int = 3,
    pairs: int = 3,
    workers: int = 4,
    shards: int = 8,
    seed: int = 2016,
) -> Dict[str, object]:
    """Sharded executors vs the sparse engine; returns the JSON record."""
    graph, build_seconds = _build_graph(n, m, seed)
    values = np.random.default_rng(seed + 1).random(n)
    weights = np.ones(n)
    partition = partition_graph(graph, shards)
    print(f"{shards} shards, edge cut {partition.edge_cut():.1%}")

    contenders: Dict[str, Callable[[], object]] = {
        "sparse": lambda: SparseGossipEngine(graph, rng=seed + 2),
        "sharded_inline": lambda: ShardedGossipEngine(
            graph, rng=seed + 2, num_shards=shards, executor="inline"
        ),
        "sharded_threads": lambda: ShardedGossipEngine(
            graph, rng=seed + 2, num_shards=shards, executor="threads"
        ),
        f"sharded_procs_w{workers}": lambda: ShardedGossipEngine(
            graph, rng=seed + 2, num_shards=shards, num_workers=workers,
            executor="processes",
        ),
    }

    results = _paired_marginal_grid(
        contenders, values, weights, steps=steps, short_steps=short_steps, pairs=pairs
    )
    _cross_check(results, values, steps=steps, mass_rtol={})

    sharded_key = f"sharded_procs_w{workers}"
    speedup = _median_ratio(results["sparse"], results[sharded_key])
    host_cpus = usable_cpu_count()
    record = {
        "benchmark": "sharded_vs_sparse",
        "n": n,
        "m": m,
        "num_edges": graph.num_edges,
        "steps": steps,
        "short_steps": short_steps,
        "pairs": pairs,
        "seed": seed,
        "shards": shards,
        "workers": workers,
        "edge_cut": round(partition.edge_cut(), 4),
        "graph_build_seconds": round(build_seconds, 2),
        "host_cpus": host_cpus,
        "start_method": _default_start_method(),
        "engines": results,
        "speedup_vs_sparse": speedup,
        "threads_vs_inline": _median_ratio(
            results["sharded_inline"], results["sharded_threads"]
        ),
        "target_speedup": TARGET_SPEEDUP,
        "target_met": bool(speedup >= TARGET_SPEEDUP),
        "parallelism_expressible": bool(host_cpus >= workers),
    }
    if host_cpus < workers:
        record["note"] = (
            f"host exposes {host_cpus} usable CPU(s) for {workers} workers: the "
            f"measured ratio reflects IPC/scheduling overhead, not the engine's "
            f"parallel scaling; re-run on >= {workers} cores for the target "
            f"comparison"
        )
    print(
        f"N={n} E={graph.num_edges} workers={workers}: sharded/processes "
        f"{speedup}x sparse (target {TARGET_SPEEDUP}x, host_cpus={host_cpus}); "
        f"threads {record['threads_vs_inline']}x inline"
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--m", type=int, default=8, help="PA density of the sharded grid")
    parser.add_argument(
        "--kernel-m",
        type=int,
        nargs="+",
        default=[8, 16],
        help="PA densities of the kernel grid (one sub-grid per value)",
    )
    parser.add_argument("--steps", type=int, default=13)
    parser.add_argument("--short-steps", type=int, default=3)
    parser.add_argument("--pairs", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--skip-kernels", action="store_true")
    parser.add_argument("--skip-sharded", action="store_true")
    parser.add_argument("--out", default="BENCH_sharded.json")
    parser.add_argument("--kernels-out", default="BENCH_kernels.json")
    args = parser.parse_args(argv)

    if not args.skip_kernels:
        record = run_kernel_benchmark(
            args.n,
            m_values=args.kernel_m,
            steps=args.steps,
            short_steps=args.short_steps,
            pairs=args.pairs,
            shards=args.shards,
            seed=args.seed,
        )
        with open(args.kernels_out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.kernels_out}")

    if not args.skip_sharded:
        record = run_benchmark(
            args.n,
            m=args.m,
            steps=args.steps,
            short_steps=args.short_steps,
            pairs=max(2, args.pairs - 1),
            workers=args.workers,
            shards=args.shards,
            seed=args.seed,
        )
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
