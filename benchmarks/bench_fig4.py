"""Benchmark E4 — Figure 4: convergence under packet loss / churn.

Lossless vs 30%-loss rounds on the same world. The paper's shape: a
small step increase, graceful degradation, exact mass conservation.
"""

import numpy as np
import pytest

from repro.core.vector_engine import VectorGossipEngine
from repro.network.churn import PacketLossModel

XI = 1e-4


@pytest.mark.parametrize("loss", [0.0, 0.1, 0.3])
def test_fig4_gossip_under_packet_loss(benchmark, bench_graph, bench_values, loss):
    n = bench_graph.num_nodes

    def run():
        loss_model = PacketLossModel(loss, rng=14) if loss else None
        engine = VectorGossipEngine(bench_graph, loss_model=loss_model, rng=15)
        return engine.run(bench_values, np.ones(n), xi=XI)

    outcome = benchmark(run)
    # Mass conservation survives churn (the Figure-4 premise).
    assert float(outcome.values.sum()) == pytest.approx(float(bench_values.sum()), rel=1e-9)
    benchmark.extra_info["loss"] = loss
    benchmark.extra_info["steps"] = outcome.steps
