"""Benchmark E2 — Table 2: messages per node per step.

One differential-gossip round per invocation; the Table-2 metric lands
in ``extra_info`` so `--benchmark-only` output doubles as the table row.
The paper's band is ~1.1-1.25, decreasing with N and with tighter xi.
"""

import numpy as np
import pytest

from repro.core.vector_engine import VectorGossipEngine


@pytest.mark.parametrize("xi", [1e-2, 1e-4])
def test_table2_messages_per_node_per_step(benchmark, bench_graph, bench_values, xi):
    n = bench_graph.num_nodes

    def run():
        engine = VectorGossipEngine(bench_graph, rng=11)
        return engine.run(bench_values, np.ones(n), xi=xi)

    outcome = benchmark(run)
    metric = outcome.messages_per_node_per_step
    assert 1.0 < metric < 2.0  # the paper's qualitative band
    benchmark.extra_info["messages_per_node_per_step"] = round(metric, 4)
    benchmark.extra_info["steps"] = outcome.steps
    benchmark.extra_info["xi"] = xi
