"""Benchmark: V reputation channels in one pass vs V sequential rounds.

Multi-channel gossip packs V channels into extra state *columns*: one
sampling draw and one scatter-add per step serve every channel, where V
sequential single-channel rounds each pay the full per-step sampling
cost. This benchmark measures that amortization directly — a single
``num_channels = V`` run against V back-to-back ``V = 1`` runs over the
same graph, seed and fixed step budget.

Methodology matches ``bench_sharded.py``: container wall-clock is
non-stationary, so every contender runs SHORT and LONG fixed budgets
back-to-back, contenders interleave round-robin within each repetition,
per-step cost is the *marginal* ``(long - short) / (steps delta)`` of
each pair, and the headline speedup is the median of per-repetition
ratios. The stacked run's per-channel estimates are cross-checked
against the sequential runs (same seed, same channel-oblivious sampling
stream → identical trajectories), so a speedup obtained by computing
the wrong thing fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/bench_channels.py \
        [--n 100000] [--m 8] [--channels 4] [--steps 13] \
        [--short-steps 3] [--pairs 4] [--engines sparse ...] \
        [--out BENCH_channels.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.core.kernels import available_kernels
from repro.core.sharded_engine import ShardedGossipEngine
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.vector_engine import VectorGossipEngine
from repro.network.preferential_attachment import preferential_attachment_graph_fast
from repro.utils.hardware import host_metadata, usable_cpu_count

#: Acceptance bar: one V=4 pass vs 4 sequential V=1 runs on the sparse
#: engine at N=100k.
TARGET_SPEEDUP = 2.0


def _make_engine(engine: str, graph, seed: int):
    if engine == "sparse":
        return SparseGossipEngine(graph, rng=seed)
    if engine == "dense":
        return VectorGossipEngine(graph, rng=seed)
    if engine == "sharded":
        return ShardedGossipEngine(graph, rng=seed, executor="inline")
    raise ValueError(f"unknown engine {engine!r}")


def _run_stacked(engine: str, graph, seed: int, values, weights, steps: int):
    """One multi-channel pass over the (N, V) stacked state."""
    worker = _make_engine(engine, graph, seed)
    outcome = worker.run(
        values,
        weights,
        xi=1e-12,
        max_steps=steps,
        run_to_max=True,
        num_channels=values.shape[1],
    )
    return [outcome.channel_estimates(c) for c in range(values.shape[1])]


def _run_sequential(engine: str, graph, seed: int, values, weights, steps: int):
    """V back-to-back single-channel runs, one per column, same seed."""
    estimates = []
    for c in range(values.shape[1]):
        worker = _make_engine(engine, graph, seed)
        outcome = worker.run(
            np.ascontiguousarray(values[:, c : c + 1]),
            np.ascontiguousarray(weights[:, c : c + 1]),
            xi=1e-12,
            max_steps=steps,
            run_to_max=True,
        )
        estimates.append(outcome.estimates)
    return estimates


def _paired_marginals(
    contenders: Dict[str, Callable[[int], List[np.ndarray]]],
    *,
    steps: int,
    short_steps: int,
    pairs: int,
) -> Dict[str, Dict[str, object]]:
    """Median marginal per-step seconds per contender, interleaved."""
    if short_steps >= steps:
        raise ValueError(f"short_steps ({short_steps}) must be < steps ({steps})")
    marginals: Dict[str, List[float]] = {name: [] for name in contenders}
    results: Dict[str, Dict[str, object]] = {}
    for repetition in range(pairs):
        for name, run in contenders.items():
            start = time.perf_counter()
            run(short_steps)
            short_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            estimates = run(steps)
            long_elapsed = time.perf_counter() - start
            marginal = max(long_elapsed - short_elapsed, 1e-9) / (steps - short_steps)
            marginals[name].append(marginal)
            if repetition == pairs - 1:
                results[name] = {
                    "long_steps": steps,
                    "short_steps": short_steps,
                    "pairs": pairs,
                    "marginal_step_seconds": [round(m, 7) for m in marginals[name]],
                    "median_step_seconds": round(statistics.median(marginals[name]), 5),
                    "steps_per_second": round(
                        1.0 / statistics.median(marginals[name]), 4
                    ),
                    "_estimates": estimates,  # consumed by the cross-check
                }
    for name in results:
        print(
            f"  {name:22s} median {results[name]['median_step_seconds']*1e3:8.1f} ms/step "
            f"({results[name]['steps_per_second']:.2f} steps/s marginal)"
        )
    return results


def _median_ratio(baseline, contender) -> float:
    pairs = zip(baseline["marginal_step_seconds"], contender["marginal_step_seconds"])
    return round(statistics.median(base / max(cont, 1e-9) for base, cont in pairs), 4)


def run_channel_benchmark(
    n: int = 100_000,
    *,
    m: int = 2,
    num_channels: int = 4,
    steps: int = 13,
    short_steps: int = 3,
    pairs: int = 4,
    engines: List[str] = None,
    seed: int = 2016,
) -> Dict[str, object]:
    """Stacked-vs-sequential grid; returns the JSON record."""
    engines = engines or ["sparse"]
    build_start = time.perf_counter()
    graph = preferential_attachment_graph_fast(n, m=m, rng=seed)
    build_seconds = time.perf_counter() - build_start
    print(
        f"graph: N={graph.num_nodes} E={graph.num_edges} m={m} "
        f"V={num_channels} (built in {build_seconds:.1f}s)"
    )
    values = np.random.default_rng(seed + 1).random((n, num_channels))
    weights = np.ones((n, num_channels))

    grids: Dict[str, object] = {}
    for engine in engines:
        contenders: Dict[str, Callable[[int], List[np.ndarray]]] = {
            f"{engine}/V{num_channels}-stacked": (
                lambda s, engine=engine: _run_stacked(
                    engine, graph, seed + 2, values, weights, s
                )
            ),
            f"{engine}/V1-sequential-x{num_channels}": (
                lambda s, engine=engine: _run_sequential(
                    engine, graph, seed + 2, values, weights, s
                )
            ),
        }
        print(f"{engine}: {', '.join(contenders)}")
        results = _paired_marginals(
            contenders, steps=steps, short_steps=short_steps, pairs=pairs
        )

        # Cross-check: same seed → the channel-oblivious sampling stream is
        # identical, so channel c of the stacked run must reproduce the
        # c-th sequential run.
        stacked_key = f"{engine}/V{num_channels}-stacked"
        sequential_key = f"{engine}/V1-sequential-x{num_channels}"
        stacked = results[stacked_key].pop("_estimates")
        sequential = results[sequential_key].pop("_estimates")
        agreement = max(
            float(np.abs(s.reshape(-1) - q.reshape(-1)).max())
            for s, q in zip(stacked, sequential)
        )
        if agreement > 1e-9:
            raise AssertionError(
                f"{engine}: stacked channels diverge from sequential runs "
                f"(max abs diff {agreement:.3g}) — an engine is computing "
                "the wrong thing"
            )
        speedup = _median_ratio(results[sequential_key], results[stacked_key])
        grids[engine] = {
            "engine": engine,
            "contenders": results,
            "stacked_vs_sequential": speedup,
            "channel_agreement_max_abs_diff": agreement,
            "target_speedup": TARGET_SPEEDUP,
            "target_met": bool(speedup >= TARGET_SPEEDUP),
        }
        if speedup < TARGET_SPEEDUP:
            grids[engine]["note"] = (
                f"{speedup}x on this container (host_cpus={usable_cpu_count()}): "
                "stacking only eliminates the V-1 redundant sampling passes; the "
                "scatter-add and ratio updates scale with V either way, and at "
                f"N={n} on this host they dominate the step, capping the "
                "amortization below the 2x target (small-N grids, where "
                "sampling dominates, show 3-5x)."
            )
        print(
            f"  {engine}: V={num_channels} stacked {speedup}x sequential "
            f"(target {TARGET_SPEEDUP}x); channels agree to {agreement:.1e}"
        )

    record: Dict[str, object] = {
        "benchmark": "multi_channel",
        "n": n,
        "m": m,
        "num_edges": graph.num_edges,
        "num_channels": num_channels,
        "steps": steps,
        "short_steps": short_steps,
        "pairs": pairs,
        "seed": seed,
        "graph_build_seconds": round(build_seconds, 2),
        **host_metadata(),
        "available_kernels": list(available_kernels()),
        "methodology": (
            "paired marginal differencing: per repetition each contender runs "
            "SHORT then LONG fixed budgets (the sequential contender runs "
            "V separate rounds per budget), marginal = (long-short)/(steps "
            "delta); the headline is the median of per-repetition ratios "
            "(robust to the non-stationary container clock)"
        ),
        "grids": grids,
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--m", type=int, default=2)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument("--steps", type=int, default=13)
    parser.add_argument("--short-steps", type=int, default=3)
    parser.add_argument("--pairs", type=int, default=4)
    parser.add_argument(
        "--engines",
        nargs="+",
        default=["sparse"],
        choices=["sparse", "dense", "sharded"],
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", default="BENCH_channels.json")
    args = parser.parse_args(argv)

    record = run_channel_benchmark(
        args.n,
        m=args.m,
        num_channels=args.channels,
        steps=args.steps,
        short_steps=args.short_steps,
        pairs=args.pairs,
        engines=args.engines,
        seed=args.seed,
    )
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
