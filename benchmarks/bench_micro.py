"""Micro-benchmarks: the hot paths behind every experiment.

Useful for catching performance regressions in the substrate (the
50 000-node sweeps multiply any slowdown here by thousands of steps).
"""

from repro import GossipConfig, aggregate
from repro.core.differential import push_counts
from repro.core.vector_gclr import true_vector_gclr
from repro.core.weights import WeightParams
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator


def test_micro_pa_generation(benchmark):
    graph = benchmark(preferential_attachment_graph, 2000, m=2, rng=23)
    assert graph.num_nodes == 2000


def test_micro_push_counts(benchmark, bench_graph):
    counts = benchmark(push_counts, bench_graph)
    assert int(counts.min()) >= 1


def test_micro_gossip_steps(benchmark, bench_graph, bench_values):
    """Fixed 50-step gossip burn: per-step engine cost, no stop protocol.

    Routed through ``repro.aggregate`` (the entry point every
    experiment uses) so the benchmark tracks the cost callers actually
    pay — backend dispatch included — instead of a hand-built engine.
    """
    config = GossipConfig(xi=1e-9, max_steps=50, run_to_max=True, rng=24)

    def run():
        return aggregate(bench_graph, bench_values, config, backend="dense")

    outcome = benchmark(run)
    assert outcome.steps == 50


def test_micro_vector_gossip_wide_state(benchmark, bench_graph):
    """Gossip with a 32-column state matrix (variant-3/4 regime)."""
    n = bench_graph.num_nodes
    values = as_generator(25).random((n, 32))
    config = GossipConfig(xi=1e-9, max_steps=20, run_to_max=True, rng=26)

    def run():
        return aggregate(bench_graph, values, config, backend="dense")

    outcome = benchmark(run)
    assert outcome.steps == 20


def test_micro_exact_gclr_fixpoint(benchmark, collusion_graph, collusion_trust):
    n = collusion_graph.num_nodes
    targets = list(range(0, n, 5))
    rep = benchmark(
        true_vector_gclr, collusion_graph, collusion_trust, targets, WeightParams()
    )
    assert rep.shape == (n, len(targets))
