"""Ablation — topology dependence of the differential advantage.

The differential rule only helps where degrees are skewed. Running the
same convergence experiment on PA (power-law), Erdős–Rényi (Poisson)
and random-regular (constant) overlays of equal mean degree shows the
differential/normal-push step gap collapsing as the degree distribution
flattens — evidence that the k-rule targets exactly the hub pathology
Chierichetti et al. identified.
"""

import numpy as np
import pytest

from repro.baselines.push_sum import normal_push_engine
from repro.core.vector_engine import VectorGossipEngine
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.random_graphs import erdos_renyi_graph, random_regular_graph
from repro.utils.rng import as_generator

N = 800
XI = 1e-4


def _make_overlay(kind: str):
    if kind == "pa":
        return preferential_attachment_graph(N, m=2, rng=27)
    if kind == "erdos_renyi":
        return erdos_renyi_graph(N, 4.0 / N, rng=27)
    return random_regular_graph(N, 4, rng=27)


@pytest.mark.parametrize("overlay", ["pa", "erdos_renyi", "regular"])
def test_ablation_overlay_step_gap(benchmark, overlay):
    graph = _make_overlay(overlay)
    values = as_generator(28).random(N)
    weights = np.ones(N)

    def run():
        diff = VectorGossipEngine(graph, rng=29).run(values, weights, xi=XI)
        push = normal_push_engine(graph, rng=29).run(values, weights, xi=XI)
        return diff, push

    diff, push = benchmark(run)
    gap = push.steps / diff.steps
    benchmark.extra_info["overlay"] = overlay
    benchmark.extra_info["diff_steps"] = diff.steps
    benchmark.extra_info["push_steps"] = push.steps
    benchmark.extra_info["step_gap"] = round(gap, 3)
    if overlay == "pa":
        # Hub-heavy: differential must win clearly.
        assert gap > 1.3
    if overlay == "regular":
        # Constant degrees: k_i == 1 everywhere, the two runs are the
        # same algorithm up to seeding noise.
        assert 0.6 < gap < 1.7
