"""Benchmark: sparse CSR engine vs dense vector engine, head to head.

Runs both engines over the same preferential-attachment topology for a
fixed step budget (``run_to_max`` removes stop-protocol noise from the
timing) and records wall-clock, per-step cost and the speedup ratio in
``BENCH_sparse.json`` — the perf artifact CI uploads on every run so
regressions in either engine's hot path are visible in one number.

It then sweeps the same burn through the :func:`repro.aggregate`
facade for every fixed-budget-capable registered backend and records
one row per backend in ``BENCH_backends.json`` — the artifact that
keeps facade overhead and each backend's hot path honest at once.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse_vs_dense.py \
        [--n 50000] [--steps 30] [--repeats 3] \
        [--out BENCH_sparse.json] [--backends-out BENCH_backends.json]

The script also cross-checks that every run lands near the same
estimates (they must agree on the fully-mixed fixpoint), so a speedup
obtained by computing the wrong thing fails loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.backend import GossipConfig, choose_backend_name
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.vector_engine import VectorGossipEngine
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.hardware import host_metadata
from repro.utils.rng import as_generator


def _best_of(repeats: int, fn: Callable[[], object]) -> tuple:
    """Minimum wall-clock over ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_world(n: int, m: int, seed: int) -> tuple:
    """``(graph, values, build_seconds)`` shared by both benchmark passes."""
    build_start = time.perf_counter()
    graph = preferential_attachment_graph(n, m=m, rng=seed)
    build_seconds = time.perf_counter() - build_start
    values = as_generator(seed + 1).random(n)
    return graph, values, build_seconds


def run_benchmark(
    n: int = 50_000,
    *,
    m: int = 2,
    steps: int = 30,
    repeats: int = 3,
    seed: int = 2016,
    world: Optional[tuple] = None,
) -> Dict[str, object]:
    """Time both engines and return the benchmark record.

    ``world`` accepts a prebuilt ``_build_world`` result so callers
    running several passes over the same topology build it once.
    """
    graph, values, graph_seconds = world if world is not None else _build_world(n, m, seed)
    weights = np.ones(n)

    def dense_run():
        return VectorGossipEngine(graph, rng=seed + 2).run(
            values, weights, xi=1e-12, max_steps=steps, run_to_max=True
        )

    def sparse_run():
        return SparseGossipEngine(graph, rng=seed + 3).run(
            values, weights, xi=1e-12, max_steps=steps, run_to_max=True
        )

    dense_seconds, dense_out = _best_of(repeats, dense_run)
    sparse_seconds, sparse_out = _best_of(repeats, sparse_run)

    # Guard against benchmarking a broken engine: both runs mix toward
    # the same mean, so after the burn each must have made comparable
    # progress from the initial spread (full 1e-8 agreement is the
    # integration suite's job — a 30-step burn is not yet mixed).
    true_mean = float(values.mean())
    spread = float(np.abs(values - true_mean).max())
    dense_error = float(np.abs(dense_out.estimates - true_mean).max())
    sparse_error = float(np.abs(sparse_out.estimates - true_mean).max())
    for label, error in (("dense", dense_error), ("sparse", sparse_error)):
        if not np.isfinite(error) or error >= spread:
            raise AssertionError(
                f"{label} engine made no mixing progress in {steps} steps "
                f"(max error {error} vs initial spread {spread})"
            )

    return {
        "benchmark": "sparse_vs_dense",
        "n": n,
        "m": m,
        "steps": steps,
        "repeats": repeats,
        "seed": seed,
        "num_edges": graph.num_edges,
        "graph_build_seconds": round(graph_seconds, 4),
        "dense_seconds": round(dense_seconds, 4),
        "sparse_seconds": round(sparse_seconds, 4),
        "dense_seconds_per_step": round(dense_seconds / steps, 6),
        "sparse_seconds_per_step": round(sparse_seconds / steps, 6),
        "speedup": round(dense_seconds / sparse_seconds, 3),
        "dense_max_error": dense_error,
        "sparse_max_error": sparse_error,
        "dense_push_messages": dense_out.push_messages,
        "sparse_push_messages": sparse_out.push_messages,
    }


def run_backend_sweep(
    n: int = 50_000,
    *,
    m: int = 2,
    steps: int = 30,
    repeats: int = 3,
    seed: int = 2016,
    backends: Optional[Sequence[str]] = None,
    world: Optional[tuple] = None,
) -> Dict[str, object]:
    """Time the same fixed-step burn through ``repro.aggregate`` per backend.

    Only fixed-budget-capable backends are swept (the message and async
    engines have no ``run_to_max`` mode); the auto-selected backend for
    this graph is recorded so the sweep doubles as a check on the
    ``"auto"`` policy.
    """
    graph, values, _ = world if world is not None else _build_world(n, m, seed)
    true_mean = float(values.mean())
    spread = float(np.abs(values - true_mean).max())
    if backends is None:
        backends = ("dense", "sparse")

    rows: List[Dict[str, object]] = []
    for index, name in enumerate(backends):
        config = GossipConfig(
            xi=1e-12, max_steps=steps, run_to_max=True, rng=seed + 2 + index
        )
        seconds, outcome = _best_of(
            repeats, lambda: aggregate(graph, values, config, backend=name)
        )
        error = float(np.abs(outcome.estimates.reshape(-1) - true_mean).max())
        if not np.isfinite(error) or error >= spread:
            raise AssertionError(
                f"backend {name!r} made no mixing progress in {steps} steps "
                f"(max error {error} vs initial spread {spread})"
            )
        rows.append(
            {
                "backend": name,
                "seconds": round(seconds, 4),
                "seconds_per_step": round(seconds / steps, 6),
                "max_error": error,
                "push_messages": outcome.push_messages,
            }
        )
    dense_row = next((r for r in rows if r["backend"] == "dense"), None)
    for row in rows:
        row["speedup_vs_dense"] = (
            round(dense_row["seconds"] / row["seconds"], 3)
            if dense_row is not None and row["seconds"]
            else None
        )
    return {
        "benchmark": "facade_backends",
        "n": n,
        "m": m,
        "steps": steps,
        "repeats": repeats,
        "seed": seed,
        "num_edges": graph.num_edges,
        "auto_backend": choose_backend_name(graph),
        "backends": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=50_000, help="number of nodes (default 50000)")
    parser.add_argument("--m", type=int, default=2, help="PA attachment parameter")
    parser.add_argument("--steps", type=int, default=30, help="gossip steps per timed run")
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions (min is kept)")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", default="BENCH_sparse.json", help="output JSON path")
    parser.add_argument(
        "--backends-out",
        default="BENCH_backends.json",
        help="per-backend facade sweep output JSON path ('' skips the sweep)",
    )
    args = parser.parse_args(argv)

    world = _build_world(args.n, args.m, args.seed)
    record = run_benchmark(
        args.n, m=args.m, steps=args.steps, repeats=args.repeats, seed=args.seed, world=world
    )
    record.update(host_metadata())
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print(
        f"\nsparse engine is {record['speedup']}x the dense engine "
        f"at N={record['n']} ({record['steps']} steps, best of {record['repeats']})",
        file=sys.stderr,
    )

    if args.backends_out:
        sweep = run_backend_sweep(
            args.n, m=args.m, steps=args.steps, repeats=args.repeats, seed=args.seed, world=world
        )
        sweep.update(host_metadata())
        with open(args.backends_out, "w") as handle:
            json.dump(sweep, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(json.dumps(sweep, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
