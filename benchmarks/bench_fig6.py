"""Benchmark E6 — Figure 6: individual-collusion (G = 1) RMS error."""

import pytest

from repro.attacks.collusion import individual_collusion
from repro.experiments.collusion_common import measure_collusion


@pytest.mark.parametrize("fraction", [0.1, 0.3])
def test_fig6_individual_collusion_rms(benchmark, collusion_graph, collusion_trust, fraction):
    n = collusion_graph.num_nodes
    attack = individual_collusion(n, fraction, rng=17)
    targets = list(range(0, n, 3))

    def run():
        return measure_collusion(
            collusion_graph,
            collusion_trust,
            attack,
            targets=targets,
            use_gossip=False,
        )

    rms_gclr, rms_unweighted = benchmark(run)
    assert rms_gclr < 1.0
    benchmark.extra_info["fraction"] = fraction
    benchmark.extra_info["rms_gclr"] = round(rms_gclr, 4)
    benchmark.extra_info["rms_unweighted"] = round(rms_unweighted, 4)
