"""Benchmark E8 — eq. 17: measured vs predicted collusion damping."""

from repro.experiments.eq17 import run as eq17_run


def test_eq17_damping_identity(benchmark):
    result = benchmark(eq17_run, num_nodes=150, fraction=0.3, group_size=5, seed=20)
    assert len(result.rows) > 0
    worst = max(row[4] for row in result.rows)
    assert worst < 1e-6  # identity, not approximation
    benchmark.extra_info["worst_abs_diff"] = worst
    benchmark.extra_info["observers"] = len(result.rows)
