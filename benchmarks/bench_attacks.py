"""Benchmark: eq.-18 attack impact × attack family × gossip backend.

Builds one seeded world (PA overlay + fully observed trust matrix) and
measures every registered attack family through
:func:`repro.attacks.evaluate.attack_impact` on each requested backend —
the clean/dirty run pair shares one seed per cell, so the recorded
``rms_gclr`` isolates the attack and the cross-backend spread isolates
engine-level numerics. ``BENCH_attacks.json`` carries, per (family ×
backend) cell: both eq.-18 errors, the eq.-17 amplification ratio
(unweighted / DGT), wall time, and the dirty-world size (sybil floods
enlarge it); per family it also records the max cross-backend spread of
``rms_gclr`` so a backend computing the wrong thing fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/bench_attacks.py \
        [--n 300] [--targets 40] [--xi 1e-4] [--seed 2016] \
        [--backends dense,sparse,sharded] [--families all] \
        [--out BENCH_attacks.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import zlib
from typing import Dict

import numpy as np

from repro.analysis.metrics import attack_amplification
from repro.attacks.evaluate import attack_impact
from repro.attacks.models import available_attacks, make_attack
from repro.core.backend import GossipConfig
from repro.experiments.attack_sweeps import _world_and_targets
from repro.utils.hardware import host_metadata

#: Per-family parameters of the benchmark's adversaries (kept modest so
#: every family runs at any --n without densifying the trust matrix).
FAMILY_PARAMS: Dict[str, dict] = {
    "collusion": dict(fraction=0.3, group_size=5),
    "slandering": dict(fraction=0.25, victim_fraction=0.15),
    "whitewashing": dict(fraction=0.15),
    "on-off": dict(fraction=0.25, period=2, on_epochs=1),
    "sybil": dict(sybil_fraction=0.15),
}

#: Cross-backend sanity bar: all engines estimate the same fixpoint, so
#: the rms spread must stay within gossip-noise scale at the bench xi.
MAX_BACKEND_SPREAD = 0.05


def run_benchmark(
    n: int = 300,
    *,
    num_targets: int = 40,
    xi: float = 1e-4,
    seed: int = 2016,
    backends=("dense", "sparse", "sharded"),
    families=None,
) -> Dict[str, object]:
    """One full family × backend sweep; returns the JSON-ready record."""
    root, graph, trust, targets = _world_and_targets(n, num_targets, seed)
    count = len(targets)
    sweep = list(families) if families else [
        f for f in available_attacks() if f in FAMILY_PARAMS
    ]
    print(f"world: N={n} E={graph.num_edges} targets={count} xi={xi:g}")

    table: Dict[str, Dict[str, object]] = {}
    for family in sweep:
        # Seeds derive from (sweep seed, family name), not sweep order,
        # so a --families subset rerun reproduces the committed cell
        # bit-for-bit when a spread gate needs bisecting.
        family_root = np.random.default_rng(
            np.random.SeedSequence([seed, zlib.crc32(family.encode())])
        )
        model = make_attack(
            family, seed=int(family_root.integers(2**62)), **FAMILY_PARAMS.get(family, {})
        )
        gossip_seed = int(family_root.integers(2**62))
        cells: Dict[str, object] = {}
        spread_values = []
        for backend in backends:
            start = time.perf_counter()
            impact = attack_impact(
                graph,
                trust,
                model,
                targets=targets,
                config=GossipConfig(xi=xi, rng=gossip_seed),
                backend=backend,
            )
            elapsed = time.perf_counter() - start
            spread_values.append(impact.rms_gclr)
            cells[backend] = {
                "rms_gclr": round(impact.rms_gclr, 8),
                "rms_unweighted": round(impact.rms_unweighted, 8),
                "amplification": round(
                    attack_amplification(impact.rms_unweighted, impact.rms_gclr), 4
                ),
                "num_nodes_dirty": impact.num_nodes_dirty,
                "steps_clean": impact.clean_outcome.steps,
                "steps_dirty": impact.dirty_outcome.steps,
                "elapsed_seconds": round(elapsed, 4),
            }
            print(
                f"  {family:14s} {backend:8s} rms_gclr={impact.rms_gclr:.5f} "
                f"rms_unweighted={impact.rms_unweighted:.5f} ({elapsed:.2f}s)"
            )
        spread = max(spread_values) - min(spread_values)
        if spread > MAX_BACKEND_SPREAD:
            raise AssertionError(
                f"{family}: cross-backend rms spread {spread:.4g} exceeds "
                f"{MAX_BACKEND_SPREAD} — an engine is computing the wrong thing"
            )
        table[family] = {"backends": cells, "rms_gclr_backend_spread": round(spread, 8)}

    return {
        "benchmark": "attack_family_x_backend",
        "n": n,
        "num_edges": graph.num_edges,
        "num_targets": count,
        "xi": xi,
        "seed": seed,
        "family_params": {f: FAMILY_PARAMS.get(f, {}) for f in sweep},
        "families": table,
        "max_backend_spread_allowed": MAX_BACKEND_SPREAD,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=300)
    parser.add_argument("--targets", type=int, default=40)
    parser.add_argument("--xi", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--backends",
        default="dense,sparse,sharded",
        help="comma-separated backend names (message is protocol-faithful but slow)",
    )
    parser.add_argument(
        "--families", default="all", help="comma-separated attack families, or 'all'"
    )
    parser.add_argument("--out", default="BENCH_attacks.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        args.n,
        num_targets=args.targets,
        xi=args.xi,
        seed=args.seed,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        families=(
            None
            if args.families == "all"
            else tuple(f.strip() for f in args.families.split(",") if f.strip())
        ),
    )
    record.update(host_metadata())
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
