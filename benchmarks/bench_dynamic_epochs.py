"""Benchmark: warm-start vs cold-start epochs on a churning overlay.

Replays the *same* seeded churn trace twice through
:func:`repro.runtime.run_dynamic` — once with warm-start epochs (resume
from the previous converged gossip pairs, Δ re-push seeding the deltas)
and once cold (every epoch re-gossips its opinions from scratch) — and
records per-epoch rounds-to-converge under the identical accuracy stop
rule, plus epoch throughput, in ``BENCH_dynamic.json``.

The headline number is ``steady_state_ratio``: warm steady-state rounds
per epoch divided by cold. The steady-churn-100k acceptance bar is
``<= 1/3`` — warm epochs only need to mix the churned sites back to
tolerance, while a cold epoch re-pays the full network mixing every
time.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic_epochs.py \
        [--n 100000] [--epochs 6] [--backend sparse] [--out BENCH_dynamic.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.network.mutable import MutableOverlay
from repro.core.backend import GossipConfig
from repro.runtime.dynamics import DynamicRunResult, run_dynamic
from repro.runtime.trace import ChurnTrace
from repro.utils.hardware import host_metadata


def _replay(
    n: int,
    m: int,
    trace: ChurnTrace,
    *,
    backend: str,
    warm_start: bool,
    epoch_tol: float,
    opinion_drift: float,
    graph_seed: int,
) -> Dict[str, object]:
    """One full dynamic run; returns its JSON-friendly summary."""
    overlay = MutableOverlay.grow_preferential(n, m=m, rng=graph_seed)
    start = time.perf_counter()
    result: DynamicRunResult = run_dynamic(
        overlay,
        trace,
        GossipConfig(delta=0.0, max_steps=800),
        backend=backend,
        warm_start=warm_start,
        epoch_tol=epoch_tol,
        opinion_drift=opinion_drift,
    )
    elapsed = time.perf_counter() - start
    records = result.records
    return {
        "warm_start": warm_start,
        "steps_per_epoch": [r.steps for r in records],
        "steady_state_steps": result.steady_state_steps,
        "cold_bootstrap_steps": records[0].steps,
        "total_steps": result.total_steps,
        "total_push_messages": result.total_push_messages,
        "final_mean_abs_error": records[-1].mean_abs_error,
        "all_epochs_converged": all(r.converged_fraction == 1.0 for r in records),
        "elapsed_seconds": round(elapsed, 3),
        "epochs_per_second": round(len(records) / elapsed, 3),
    }


def run_benchmark(
    n: int = 100_000,
    *,
    m: int = 2,
    epochs: int = 6,
    join_rate: float = 0.002,
    leave_rate: float = 0.002,
    opinion_drift: float = 0.01,
    epoch_tol: float = 1e-3,
    backend: str = "sparse",
    seed: int = 2016,
) -> Dict[str, object]:
    """Warm vs cold replay of one churn trace; returns the record."""
    trace = ChurnTrace.steady(
        epochs, population=n, join_rate=join_rate, leave_rate=leave_rate, seed=seed
    )
    warm = _replay(
        n, m, trace, backend=backend, warm_start=True,
        epoch_tol=epoch_tol, opinion_drift=opinion_drift, graph_seed=seed + 1,
    )
    cold = _replay(
        n, m, trace, backend=backend, warm_start=False,
        epoch_tol=epoch_tol, opinion_drift=opinion_drift, graph_seed=seed + 1,
    )
    ratio = warm["steady_state_steps"] / max(cold["steady_state_steps"], 1e-9)
    if not (warm["all_epochs_converged"] and cold["all_epochs_converged"]):
        raise AssertionError("an epoch exhausted its step budget; raise max_steps")
    return {
        "benchmark": "dynamic_epochs",
        "n": n,
        "m": m,
        "epochs": epochs,
        "join_rate": join_rate,
        "leave_rate": leave_rate,
        "opinion_drift": opinion_drift,
        "epoch_tol": epoch_tol,
        "backend": backend,
        "seed": seed,
        "trace_arrivals": trace.total_arrivals,
        "trace_departures": trace.total_departures,
        "warm": warm,
        "cold": cold,
        "steady_state_ratio": round(ratio, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--m", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--join-rate", type=float, default=0.002)
    parser.add_argument("--leave-rate", type=float, default=0.002)
    parser.add_argument("--opinion-drift", type=float, default=0.01)
    parser.add_argument("--epoch-tol", type=float, default=1e-3)
    parser.add_argument("--backend", default="sparse")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", default="BENCH_dynamic.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        args.n,
        m=args.m,
        epochs=args.epochs,
        join_rate=args.join_rate,
        leave_rate=args.leave_rate,
        opinion_drift=args.opinion_drift,
        epoch_tol=args.epoch_tol,
        backend=args.backend,
        seed=args.seed,
    )
    record.update(host_metadata())
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    warm, cold = record["warm"], record["cold"]
    print(
        f"N={record['n']} backend={record['backend']} epochs={record['epochs']}: "
        f"warm {warm['steady_state_steps']:.2f} rounds/epoch vs cold "
        f"{cold['steady_state_steps']:.2f} (ratio {record['steady_state_ratio']}); "
        f"warm {warm['epochs_per_second']} epochs/s, cold {cold['epochs_per_second']} epochs/s"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
