"""Benchmark E5 — Figure 5: group-collusion RMS error.

One (fraction, G) cell of the Figure-5 sweep per invocation, using the
exact eq.-6 fixpoint (the gossip engines are validated elsewhere to
reach it; benchmarks repeat their body many times, so the cheap exact
path keeps rounds meaningful). The eq.-18 RMS lands in ``extra_info``.
"""

import pytest

from repro.attacks.collusion import group_colluders, select_colluders
from repro.experiments.collusion_common import measure_collusion


@pytest.mark.parametrize("group_size", [2, 10])
def test_fig5_group_collusion_rms(benchmark, collusion_graph, collusion_trust, group_size):
    n = collusion_graph.num_nodes
    colluders = select_colluders(n, 0.3, rng=16)
    attack = group_colluders(colluders, group_size)
    targets = list(range(0, n, 3))

    def run():
        return measure_collusion(
            collusion_graph,
            collusion_trust,
            attack,
            targets=targets,
            use_gossip=False,
        )

    rms_gclr, rms_unweighted = benchmark(run)
    # 30% colluders: error stays well below 1 (the paper's "quite less").
    assert rms_gclr < 1.0
    # Eq. 17's damping assumes an honest neighbour-feedback channel; our
    # attack poisons reports wholesale, so observers with colluding
    # trusted neighbours can see slightly amplified error — allow a
    # small margin over the unweighted scheme.
    assert rms_gclr <= rms_unweighted * 1.15
    benchmark.extra_info["group_size"] = group_size
    benchmark.extra_info["rms_gclr"] = round(rms_gclr, 4)
    benchmark.extra_info["rms_unweighted"] = round(rms_unweighted, 4)
