"""Benchmark E1 — Table 1: one full round on the Figure-2 example network.

Regenerates the paper's per-iteration trace with the protocol-faithful
message engine and records the convergence quality in ``extra_info``.
"""

import numpy as np

from repro.core.engine import MessageLevelGossip
from repro.network.topology_example import EXAMPLE_INITIAL_VALUES, example_network


def test_table1_example_network_round(benchmark):
    graph = example_network()
    initial = np.asarray(EXAMPLE_INITIAL_VALUES)
    target = float(initial.mean())

    def run():
        engine = MessageLevelGossip(graph, rng=2016)
        return engine.run(initial, np.ones(10), xi=0.005, max_steps=1000)

    outcome = benchmark(run)
    final = outcome.estimates.reshape(-1)
    assert np.allclose(final, target, atol=0.02)
    benchmark.extra_info["iterations"] = outcome.steps
    benchmark.extra_info["max_error"] = float(np.abs(final - target).max())
