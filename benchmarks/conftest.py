"""Shared benchmark fixtures: prebuilt worlds so setup cost stays out of timings."""

from __future__ import annotations

import pytest

from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import complete_trust_matrix, random_trust_matrix
from repro.utils.rng import as_generator

BENCH_N = 1000  # large enough for the paper's shapes, small enough per-round


@pytest.fixture(scope="module")
def bench_graph():
    """A 1000-node PA graph (m=2), the benchmark workhorse topology."""
    return preferential_attachment_graph(BENCH_N, m=2, rng=2016)


@pytest.fixture(scope="module")
def bench_values(bench_graph):
    """Per-node initial observations for averaging benchmarks."""
    return as_generator(7).random(bench_graph.num_nodes)


@pytest.fixture(scope="module")
def bench_trust(bench_graph):
    """Edge-local trust observations over the benchmark graph."""
    return random_trust_matrix(bench_graph, rng=8)


@pytest.fixture(scope="module")
def collusion_graph():
    """Smaller world for collusion benchmarks (dense trust is O(N^2))."""
    return preferential_attachment_graph(150, m=2, rng=9)


@pytest.fixture(scope="module")
def collusion_trust(collusion_graph):
    """Fully observed trust matrix (the paper's heavily loaded regime)."""
    return complete_trust_matrix(collusion_graph.num_nodes, rng=10)
