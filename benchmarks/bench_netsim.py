"""Benchmark: gossip convergence under simulated network conditions.

Two seeded sweeps through the event-driven engine, recorded in
``BENCH_netsim.json``:

1. **Latency sweep** — one preferential-attachment graph, one
   :class:`~repro.network.conditions.HomogeneousLink` whose exponential
   per-push delay mean grows from 0 (instant) upward. Reports simulated
   convergence time, push count, peak in-flight pairs, and final
   estimate error: latency stretches simulated time and keeps mass in
   the air, but mass conservation holds at every event, so accuracy
   should not degrade.

2. **Partition sweep** — one regional graph under a
   :class:`~repro.network.conditions.RegionalLinkModel` with a single
   :class:`~repro.network.conditions.PartitionWindow` of growing
   duration. The engine refuses to declare convergence before the
   window heals (the link's ``quiet_horizon``), so the headline
   ``recovery_time`` — simulated time from heal to global xi-quiet —
   isolates how quickly the re-joined islands mix back together.

Usage::

    PYTHONPATH=src python benchmarks/bench_netsim.py [--small] \
        [--out BENCH_netsim.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.core.async_engine import AsyncGossipEngine
from repro.network.conditions import (
    HomogeneousLink,
    LatencySpec,
    PartitionWindow,
    RegionalLinkModel,
)
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.random_graphs import regional_graph
from repro.utils.hardware import host_metadata


def _run_once(graph, link, *, seed: int, xi: float, quiet_window: float,
              max_time: float) -> Dict[str, object]:
    """One engine run; returns its JSON-friendly summary."""
    n = graph.num_nodes
    opinions = np.random.default_rng(seed + 1).random(n)
    engine = AsyncGossipEngine(graph, rng=seed, link=link, link_rng=seed + 2)
    start = time.perf_counter()
    outcome = engine.run(
        opinions, np.ones(n), xi=xi, quiet_window=quiet_window,
        max_time=max_time, check_mass=True,
    )
    elapsed = time.perf_counter() - start
    estimates = outcome.values / outcome.weights
    true_mean = float(opinions.mean())
    return {
        "converged": outcome.converged,
        "simulated_time": round(outcome.simulated_time, 6),
        "total_pushes": outcome.total_pushes,
        "total_drops": outcome.total_drops,
        "partition_drops": outcome.partition_drops,
        "max_in_flight": outcome.max_in_flight,
        "flushed_in_flight": outcome.flushed_in_flight,
        "max_abs_error": float(np.abs(estimates - true_mean).max()),
        "elapsed_seconds": round(elapsed, 3),
    }


def sweep_latency(n: int, *, means: Sequence[float], seed: int,
                  xi: float) -> List[Dict[str, object]]:
    """Same graph and seeds, growing exponential per-push delay."""
    graph = preferential_attachment_graph(n, m=2, rng=seed)
    rows = []
    for mean in means:
        link = HomogeneousLink(0.0, latency=LatencySpec("exponential", mean))
        row = _run_once(
            graph, link, seed=seed + 10, xi=xi,
            quiet_window=3.0 + 4.0 * mean, max_time=5_000.0 * (1.0 + mean),
        )
        row["latency_mean"] = mean
        rows.append(row)
    return rows


def sweep_partition(n: int, *, durations: Sequence[float], start: float,
                    seed: int, xi: float) -> List[Dict[str, object]]:
    """Same regional graph and seeds, growing partition duration."""
    graph = regional_graph(
        n, 2, intra_probability=min(1.0, 30.0 / n), inter_probability=min(1.0, 4.0 / n),
        rng=seed,
    )
    latency = LatencySpec("exponential", 0.05)
    rows = []
    for duration in durations:
        partitions = (PartitionWindow(start=start, duration=duration),) if duration else ()
        link = RegionalLinkModel(
            2, intra_latency=latency, inter_latency=LatencySpec("exponential", 0.2),
            partitions=partitions,
        )
        row = _run_once(graph, link, seed=seed + 20, xi=xi,
                        quiet_window=4.0, max_time=2_000.0)
        heal = start + duration if duration else 0.0
        row["partition_duration"] = duration
        row["recovery_time"] = round(max(0.0, row["simulated_time"] - heal), 6)
        rows.append(row)
    return rows


def run_benchmark(*, latency_n: int, partition_n: int, seed: int,
                  xi: float) -> Dict[str, object]:
    latency_rows = sweep_latency(
        latency_n, means=[0.0, 0.05, 0.2, 0.5, 1.0], seed=seed, xi=xi
    )
    partition_rows = sweep_partition(
        partition_n, durations=[0.0, 10.0, 25.0, 50.0], start=10.0,
        seed=seed, xi=xi,
    )
    if not all(r["converged"] for r in latency_rows + partition_rows):
        raise AssertionError("a sweep point hit max_time; raise the budget")
    return {
        "benchmark": "netsim",
        "seed": seed,
        "xi": xi,
        "latency_sweep": {"n": latency_n, "m": 2, "rows": latency_rows},
        "partition_sweep": {
            "n": partition_n,
            "num_regions": 2,
            "partition_start": 10.0,
            "rows": partition_rows,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--latency-n", type=int, default=800)
    parser.add_argument("--partition-n", type=int, default=600)
    parser.add_argument("--xi", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized run: shrinks both sweeps to a few hundred nodes",
    )
    parser.add_argument("--out", default="BENCH_netsim.json")
    args = parser.parse_args(argv)

    latency_n = 200 if args.small else args.latency_n
    partition_n = 150 if args.small else args.partition_n
    record = run_benchmark(
        latency_n=latency_n, partition_n=partition_n, seed=args.seed, xi=args.xi
    )
    record.update(host_metadata())
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in record["latency_sweep"]["rows"]:
        print(
            f"latency mean={row['latency_mean']:<5} t={row['simulated_time']:>10.3f} "
            f"pushes={row['total_pushes']:>7} in-flight<= {row['max_in_flight']:>3} "
            f"err={row['max_abs_error']:.2e}"
        )
    for row in record["partition_sweep"]["rows"]:
        print(
            f"partition d={row['partition_duration']:<5} t={row['simulated_time']:>10.3f} "
            f"recovery={row['recovery_time']:>8.3f} part_drops={row['partition_drops']:>5} "
            f"err={row['max_abs_error']:.2e}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
