"""Ablation — the differential push-count rule.

DESIGN.md calls out the k-rule as the paper's core mechanism; this
ablation pins down that it is the *degree-adaptive* k (not just "push
more") that speeds hub-heavy graphs: differential vs fixed k=1 vs fixed
k=2 on the same world, same seeds.
"""

import numpy as np
import pytest

from repro.core.differential import fixed_push_counts, push_counts
from repro.core.vector_engine import VectorGossipEngine

XI = 1e-4


def _run(graph, values, counts, announce):
    engine = VectorGossipEngine(
        graph, push_counts=counts, degree_announcements=announce, rng=21
    )
    return engine.run(values, np.ones(graph.num_nodes), xi=XI)


@pytest.mark.parametrize("rule", ["differential", "fixed_k1", "fixed_k2"])
def test_ablation_push_rule(benchmark, bench_graph, bench_values, rule):
    if rule == "differential":
        counts, announce = push_counts(bench_graph), True
    elif rule == "fixed_k1":
        counts, announce = fixed_push_counts(bench_graph, 1), False
    else:
        counts, announce = fixed_push_counts(bench_graph, 2), False

    outcome = benchmark(_run, bench_graph, bench_values, counts, announce)
    benchmark.extra_info["rule"] = rule
    benchmark.extra_info["steps"] = outcome.steps
    benchmark.extra_info["push_messages"] = outcome.push_messages


def test_ablation_differential_beats_fixed_k1(benchmark, bench_graph, bench_values):
    def run():
        diff = _run(bench_graph, bench_values, push_counts(bench_graph), True)
        k1 = _run(bench_graph, bench_values, fixed_push_counts(bench_graph, 1), False)
        return diff, k1

    diff, k1 = benchmark(run)
    assert diff.steps < k1.steps
    benchmark.extra_info["step_ratio"] = round(k1.steps / diff.steps, 3)
